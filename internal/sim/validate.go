package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"soemt/internal/core"
)

// Validate aggregates the hardware configuration checks: pipeline
// geometry, memory-hierarchy geometry, and controller parameters.
func (m MachineConfig) Validate() error {
	if err := m.Pipeline.Validate(); err != nil {
		return err
	}
	if err := m.Memory.Validate(); err != nil {
		return err
	}
	if err := m.Controller.Validate(); err != nil {
		return err
	}
	return nil
}

// Validate reports measurement-protocol errors. A zero measurement
// target would make the run vacuous, so it is rejected; the warmup
// lengths and the MaxCycles cap may legitimately be zero.
func (s Scale) Validate() error {
	if s.Measure == 0 {
		return fmt.Errorf("sim: zero measurement target")
	}
	return nil
}

// Validate checks the complete run description: at least one thread,
// a valid machine, a valid protocol, and well-formed thread specs.
// sim.Run validates specs before building any machine state, so an
// invalid CLI flag or sweep value surfaces as an error here rather
// than as a panic deep inside a constructor.
func (s Spec) Validate() error {
	if len(s.Threads) == 0 {
		return fmt.Errorf("sim: no threads")
	}
	if err := s.Machine.Validate(); err != nil {
		return err
	}
	if err := s.Scale.Validate(); err != nil {
		return err
	}
	for i, ts := range s.Threads {
		if err := ts.Profile.Validate(); err != nil {
			return fmt.Errorf("sim: thread %d: %w", i, err)
		}
		if ts.Slot < 0 {
			return fmt.Errorf("sim: thread %d: negative slot", i)
		}
	}
	if _, err := s.engine(); err != nil {
		return err
	}
	return nil
}

// engine resolves the spec's engine selection to the controller enum.
// Empty Engine defers to the legacy CycleByCycle switch, whose "not
// cycle-by-cycle" case now means the event-wheel engine (bit-identical
// to the fast-forward engine it replaces as the default).
func (s Spec) engine() (core.Engine, error) {
	switch s.Engine {
	case "":
		if s.CycleByCycle {
			return core.EngineCycleByCycle, nil
		}
		return core.EngineEventWheel, nil
	case "cycle-by-cycle":
		return core.EngineCycleByCycle, nil
	case "fast-forward":
		return core.EngineFastForward, nil
	case "event-wheel":
		return core.EngineEventWheel, nil
	}
	return 0, fmt.Errorf("sim: unknown engine %q (want cycle-by-cycle, fast-forward or event-wheel)", s.Engine)
}

// fingerprintLabel returns a short stable identifier for the spec,
// used to tag watchdog and panic errors so a failing run in a large
// matrix can be traced back to its exact configuration. It degrades
// to a placeholder rather than failing when the spec cannot be
// fingerprinted (e.g. a nil policy).
func (s Spec) fingerprintLabel() string {
	payload, err := s.FingerprintJSON()
	if err != nil {
		return "unfingerprintable"
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:6])
}
