// Package sim assembles the full simulated machine (out-of-order core,
// memory hierarchy, branch unit, SOE controller) and runs the paper's
// measurement protocol: functional cache warmup, a timing warmup
// excluded from statistics, then a measured run until every thread has
// retired its instruction target.
package sim

import (
	"context"
	"fmt"
	"sync"
	"time"

	"soemt/internal/arena"
	"soemt/internal/branch"
	"soemt/internal/core"
	"soemt/internal/isa"
	"soemt/internal/mem"
	"soemt/internal/obs"
	"soemt/internal/pipeline"
	"soemt/internal/stats"
	"soemt/internal/workload"
)

// MachineConfig bundles all hardware configuration.
type MachineConfig struct {
	Pipeline   pipeline.Config
	Memory     mem.HierarchyConfig
	Controller core.Config
}

// DefaultMachine returns the paper's machine (Table 3 / DESIGN.md).
func DefaultMachine() MachineConfig {
	return MachineConfig{
		Pipeline:   pipeline.DefaultConfig(),
		Memory:     mem.DefaultConfig(),
		Controller: core.DefaultConfig(),
	}
}

// Scale sets the measurement protocol lengths, in instructions.
type Scale struct {
	CacheWarm uint64 // functional cache warmup per thread
	Warm      uint64 // timing warmup excluded from statistics
	Measure   uint64 // measured instructions per thread
	MaxCycles uint64 // safety cap on measured cycles (0 = none)
}

// PaperScale is the protocol from §4.1: 10M cache-warm, 1M excluded,
// 6M measured instructions per thread.
func PaperScale() Scale {
	return Scale{CacheWarm: 10_000_000, Warm: 1_000_000, Measure: 6_000_000}
}

// QuickScale is a scaled-down protocol for tests and smoke runs. The
// shapes of the paper's results hold at this scale; absolute values
// are noisier.
func QuickScale() Scale {
	return Scale{CacheWarm: 300_000, Warm: 150_000, Measure: 700_000, MaxCycles: 60_000_000}
}

// ThreadSpec describes one thread of a run.
type ThreadSpec struct {
	Profile  workload.Profile
	Slot     int    // address-space slot (distinct per thread)
	StartSeq uint64 // initial architectural position (paper offsets same-benchmark pairs by 1M)
	Events   []pipeline.InjectedStall
}

// Spec describes a complete simulation run.
//
// Watchdog, Engine, CycleByCycle and Obs are execution policy and
// observability, not simulation input: they bound, slow or watch the
// run but never change a produced result, so all are excluded from
// FingerprintJSON and cache keys.
type Spec struct {
	Machine  MachineConfig
	Threads  []ThreadSpec
	Scale    Scale
	Watchdog Watchdog

	// Engine names the idle-stretch engine: "event-wheel" (the
	// default), "fast-forward", or "cycle-by-cycle" (the reference that
	// executes every simulated cycle individually). All engines produce
	// bit-identical Results — verified by the equivalence matrix in
	// fastforward_test.go — so this exists for verification and for
	// benchmarking the engines against each other (DESIGN.md §9, §16).
	// Empty defers to the legacy CycleByCycle switch.
	Engine string

	// CycleByCycle is the pre-Engine form of selecting the reference
	// engine; it is consulted only when Engine is empty. Retained so
	// existing call sites and serialized specs keep their meaning.
	CycleByCycle bool

	// Obs, when non-nil, attaches the observability layer (DESIGN.md
	// §10): controller events stream into Obs.Trace and counters
	// accumulate into Obs.Metrics. Strictly read-only with respect to
	// the simulation — results are bit-identical with or without an
	// observer (the equivalence matrix runs with tracing enabled) —
	// and therefore excluded from fingerprints: observed and
	// unobserved runs share cache entries. Note that a cache hit skips
	// the simulation entirely and records nothing.
	Obs *obs.Observer `json:"-"`
}

// ThreadResult is the per-thread outcome of a run.
type ThreadResult struct {
	Name     string
	Counters stats.Counters // Instrs / running Cycles / switch-causing Misses
	IPC      float64        // instructions per wall cycle (IPC_SOE_j; IPC_ST for single-thread runs)
	EstIPCST float64        // Eq. 13 estimate from the full-run counters
	IPM      float64        // measured instructions per counted miss
	CPM      float64        // measured running cycles per counted miss
	Visits   uint64         // completed dispatches
	AvgVisit float64        // mean instructions per dispatch (realized IPSw)
}

// Result is the outcome of one run.
type Result struct {
	WallCycles uint64
	Threads    []ThreadResult
	IPCTotal   float64          // Eq. 10 aggregate throughput
	Switches   core.SwitchStats // by cause (measured window only)
	Samples    []core.Sample    // Δ-cycle time series (Figure 5)

	// Truncated reports that the measured run stopped at
	// Scale.MaxCycles before every thread retired its target; the
	// per-thread counters (and thus IPC) cover fewer instructions than
	// Scale.Measure requested.
	Truncated bool
}

// testHookPostBuild, when non-nil, runs after the machine is built and
// before measurement — a test seam for the panic-recovery boundary.
var testHookPostBuild func()

// arenaPool recycles the per-run state arenas across RunContext calls
// (including concurrent ones — each run checks out its own arena).
var arenaPool = sync.Pool{New: func() any { return arena.New() }}

// ForcedPer1k returns forced (non-miss) switches per 1000 cycles, the
// right axis of the paper's Figure 7.
func (r *Result) ForcedPer1k() float64 {
	if r.WallCycles == 0 {
		return 0
	}
	return float64(r.Switches.Forced()) / float64(r.WallCycles) * 1000
}

// Run executes the full protocol for spec without external
// cancellation; see RunContext.
func Run(spec Spec) (*Result, error) {
	return RunContext(context.Background(), spec)
}

// RunContext executes the full protocol for spec, honoring ctx
// cancellation, the spec's wall-clock deadline, and its
// forward-progress stall detector between execution slices.
//
// Robustness contract: the spec is validated before any machine state
// is built (bad configurations return errors, they never panic), and
// an internal invariant panic in the pipeline, memory system or
// controller is recovered into a *PanicError carrying the spec
// fingerprint — a failing run in a large matrix diagnoses itself
// instead of killing the process.
func RunContext(ctx context.Context, spec Spec) (res *Result, err error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	fp := spec.fingerprintLabel()
	defer func() {
		if rec := recover(); rec != nil {
			res, err = nil, recoverToError(fp, rec)
		}
	}()

	stallWindow := spec.Watchdog.StallCycles
	if stallWindow == 0 {
		stallWindow = DefaultStallCycles
	}
	var deadline time.Time
	if spec.Watchdog.Timeout > 0 {
		deadline = time.Now().Add(spec.Watchdog.Timeout)
	}
	// checkAborts reports cancellation or deadline expiry; cheap enough
	// to call once per execution slice.
	checkAborts := func(phase string, cycle uint64) error {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("sim: %s cancelled at cycle %d [spec %s]: %w", phase, cycle, fp, cerr)
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return &DeadlineError{Phase: phase, Cycle: cycle, Timeout: spec.Watchdog.Timeout, Fingerprint: fp}
		}
		return nil
	}

	// Machine-internal state (cache/TLB tag arrays, pipeline SoA
	// arrays) is carved from a pooled arena so repeated runs reuse the
	// same backing memory: after the pool warms up, building a machine
	// is O(1) allocations. Only machine internals live in the arena —
	// the returned Result, Samples and observer state never do, so
	// recycling on return cannot alias anything the caller retains.
	ar := arenaPool.Get().(*arena.Arena)
	defer func() {
		ar.Reset()
		arenaPool.Put(ar)
	}()

	hier, err := mem.NewHierarchyIn(ar, spec.Machine.Memory)
	if err != nil {
		return nil, err
	}
	bu := branch.NewUnit(
		spec.Machine.Pipeline.BranchEntries,
		spec.Machine.Pipeline.BTBEntries,
		spec.Machine.Pipeline.RASDepth,
		spec.Machine.Pipeline.HistoryBits,
	)
	pipe, err := pipeline.NewIn(ar, spec.Machine.Pipeline, hier, bu)
	if err != nil {
		return nil, err
	}

	threads := make([]*core.Thread, len(spec.Threads))
	gens := make([]*workload.Generator, len(spec.Threads))
	for i, ts := range spec.Threads {
		gens[i] = workload.NewOffset(ts.Profile, ts.Slot)
		threads[i] = &core.Thread{
			Name:   ts.Profile.Name,
			Stream: workload.NewStream(gens[i], ts.StartSeq),
			Events: ts.Events,
		}
	}

	// Functional cache warmup (paper: 10M instructions per thread).
	for i, ts := range spec.Threads {
		if err := warmCaches(hier, gens[i], ts.StartSeq, spec.Scale.CacheWarm, func() error {
			return checkAborts("cache warmup", 0)
		}); err != nil {
			return nil, err
		}
	}
	hier.ResetTiming()
	hier.ResetStats()

	ctl, err := core.NewController(pipe, spec.Machine.Controller, threads)
	if err != nil {
		return nil, err
	}
	engine, err := spec.engine()
	if err != nil {
		return nil, err
	}
	ctl.SetEngine(engine)
	ctl.SetObserver(spec.Obs)
	tracer := spec.Obs.Tracer()
	phaseCause := func(phase string) obs.Cause {
		if phase == "measure" {
			return obs.CauseMeasure
		}
		return obs.CauseWarmup
	}
	if testHookPostBuild != nil {
		testHookPostBuild()
	}

	// runPhase advances toward target in slices, checking cancellation,
	// the wall-clock deadline, and forward progress between slices.
	runPhase := func(phase string, target uint64) (uint64, error) {
		start := ctl.Now()
		lastRetired := ctl.TotalRetired()
		lastProgress := start
		if tracer != nil {
			tracer.Record(obs.Event{
				Cycle: start, Kind: obs.KindPhase, Cause: phaseCause(phase),
				Thread: -1, N: target,
			})
		}
		for !ctl.Advance(target, spec.Scale.MaxCycles, start, sliceCycles) {
			if tracer != nil {
				// One watchdog slice elapsed without completing the phase.
				tracer.Record(obs.Event{
					Cycle: ctl.Now(), Kind: obs.KindSlice, Cause: phaseCause(phase),
					Thread: -1, N: sliceCycles,
				})
			}
			if err := checkAborts(phase, ctl.Now()); err != nil {
				return ctl.Now() - start, err
			}
			if r := ctl.TotalRetired(); r != lastRetired {
				lastRetired, lastProgress = r, ctl.Now()
			} else if stallWindow != StallOff && ctl.Now()-lastProgress >= stallWindow {
				return ctl.Now() - start, &StallError{
					Phase: phase, Cycle: ctl.Now(), Window: stallWindow, Fingerprint: fp,
				}
			}
		}
		return ctl.Now() - start, nil
	}

	// Timing warmup: run, then discard statistics (paper: first 1M
	// instructions excluded; also warms the fairness-mechanism state).
	if _, err := runPhase("warmup", spec.Scale.Warm); err != nil {
		return nil, err
	}
	ctl.ResetStats()

	cycles, err := runPhase("measure", spec.Scale.Measure)
	if err != nil {
		return nil, err
	}

	res = &Result{
		WallCycles: cycles,
		Switches:   ctl.Switches(),
		Samples:    ctl.Samples(),
		Truncated:  ctl.Truncated(),
	}
	missLat := spec.Machine.Controller.MissLat
	for _, th := range ctl.Threads() {
		cnt := th.Counters()
		var ipc float64
		if cycles > 0 {
			// Guarded: a measured phase can complete in 0 cycles (e.g.
			// Measure at or below the warmup target), and NaN would
			// poison the CSV exporter and fail json.Marshal in the
			// persistent result cache.
			ipc = float64(cnt.Instrs) / float64(cycles)
		}
		tr := ThreadResult{
			Name:     th.Name,
			Counters: cnt,
			IPC:      ipc,
			EstIPCST: cnt.EstIPCST(missLat),
			IPM:      cnt.IPM(),
			CPM:      cnt.CPM(),
			Visits:   th.Visits(),
			AvgVisit: th.AvgVisitInstrs(),
		}
		res.Threads = append(res.Threads, tr)
		res.IPCTotal += tr.IPC
	}
	if reg := spec.Obs.Registry(); reg != nil {
		// Publish the measured window's pipeline metrics. Controller
		// counters (switches, skips, samples) accumulated live.
		pipe.Metrics.Each(func(name string, v uint64) {
			reg.Counter("pipe." + name).Add(v)
		})
		reg.Counter("sim.runs").Inc()
		reg.Counter("sim.wall_cycles").Add(cycles)
		// Ring overflow is otherwise invisible outside the tracer itself;
		// the registry makes silent trace truncation a counted event.
		if d := tracer.Dropped(); d > 0 {
			reg.Counter("trace.dropped").Add(d)
		}
	}
	return res, nil
}

// RunSingle runs one thread alone on the machine (the paper's IPC_ST
// reference runs).
func RunSingle(machine MachineConfig, ts ThreadSpec, scale Scale) (*Result, error) {
	machine.Controller.Policy = core.EventOnly{}
	return Run(Spec{Machine: machine, Threads: []ThreadSpec{ts}, Scale: scale})
}

// warmCaches brings the thread's resident working set to steady state
// without polluting timing state. Two parts:
//
//  1. Region sweeps: every code and hot/warm data line is touched, and
//     the page tables of all regions (including the cold region, whose
//     PTE lines are L2-resident in steady state) are walked. This is
//     the functional equivalent of the paper's 10M-instruction warmup
//     and makes short runs behave like long ones.
//  2. An instruction-driven pass over n instructions starting at seq,
//     which restores realistic recency (LRU) ordering and TLB
//     contents.
//
// Accesses are spaced far apart so no two overlap in the MSHRs.
//
// abort is polled periodically (the paper-scale warmup is 10M
// instructions per thread) so cancellation and deadlines take effect
// during warmup too; a non-nil abort error stops the warmup and is
// returned unchanged.
func warmCaches(h *mem.Hierarchy, g *workload.Generator, seq, n uint64, abort func() error) error {
	now := uint64(0)
	touch := func(addr uint64, fetch bool) {
		if fetch {
			h.TranslateFetch(now, addr)
			h.AccessFetch(now, addr)
		} else {
			h.TranslateData(now, addr)
			h.AccessData(now, addr, false)
		}
		now += 1000
	}
	r := g.Regions()
	for a := r.CodeBase; a < r.CodeBase+r.CodeBytes; a += 64 {
		touch(a, true)
	}
	for a := r.HotBase; a < r.HotBase+r.HotBytes; a += 64 {
		touch(a, false)
	}
	for a := r.WarmBase; a < r.WarmBase+r.WarmBytes; a += 64 {
		touch(a, false)
	}
	// Walk one page in eight of the cold region: a 64-byte PTE line
	// covers eight 4 KiB pages, so this warms the full PTE footprint
	// into the L2 without touching cold data lines.
	for a := r.ColdBase; a < r.ColdBase+r.ColdBytes; a += 8 * 4096 {
		h.TranslateData(now, a)
		now += 1000
	}

	for i := seq; i < seq+n; i++ {
		if (i-seq)%65536 == 0 {
			if err := abort(); err != nil {
				return err
			}
		}
		u := g.At(i)
		if u.Seq%16 == 0 {
			touch(u.PC, true)
		}
		if u.Kind.IsMem() {
			h.TranslateData(now, u.Addr)
			h.AccessData(now, u.Addr, u.Kind == isa.Store)
			now += 1000
		}
	}
	return nil
}
