package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"soemt/internal/core"
	"soemt/internal/pipeline"
	"soemt/internal/workload"
)

// singleSpec builds a one-thread spec with no warmup, for tests that
// need the measured phase to start immediately.
func singleSpec(name string, scale Scale) Spec {
	m := DefaultMachine()
	m.Controller.Policy = core.EventOnly{}
	return Spec{
		Machine: m,
		Threads: []ThreadSpec{{Profile: workload.MustByName(name), Slot: 0}},
		Scale:   scale,
	}
}

// A never-resolving injected stall with MaxCycles=0 would previously
// spin forever; the stall watchdog must turn it into a diagnostic
// error.
func TestStallWatchdogCatchesNeverResolvingStall(t *testing.T) {
	spec := singleSpec("gcc", Scale{Measure: 1_000_000})
	spec.Threads[0].Events = []pipeline.InjectedStall{
		{AtInstr: 100, StallCycles: 1 << 40}, // effectively forever
	}
	spec.Watchdog = Watchdog{StallCycles: 300_000}

	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		res, err = Run(spec)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stalled spec did not return within 30s: watchdog ineffective")
	}
	if res != nil {
		t.Fatal("stalled run must not produce a result")
	}
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("want ErrStalled, got %v", err)
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("want *StallError, got %T", err)
	}
	if se.Fingerprint == "" || se.Window != 300_000 {
		t.Errorf("stall error missing diagnostics: %+v", se)
	}
}

func TestWallClockWatchdog(t *testing.T) {
	// A paper-sized measurement with no cycle cap would take minutes;
	// the wall-clock watchdog must abort it near the configured budget.
	spec := singleSpec("swim", Scale{Measure: 2_000_000_000})
	spec.Watchdog = Watchdog{Timeout: 100 * time.Millisecond}

	start := time.Now()
	res, err := Run(spec)
	elapsed := time.Since(start)
	if res != nil || !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got (%v, %v)", res, err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("deadline enforced after %v; want promptly after 100ms", elapsed)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, singleSpec("gcc", tinyScale()))
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got (%v, %v)", res, err)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	spec := singleSpec("swim", Scale{Measure: 2_000_000_000})
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, spec)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation not honored within 30s")
	}
}

// Invalid machine configurations must surface as errors from sim.Run —
// the acceptance criterion for replacing the constructor panics.
func TestInvalidConfigsReturnErrors(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Spec)
	}{
		{"MemLatency=0", func(s *Spec) { s.Machine.Memory.MemLatency = 0 }},
		{"MSHRs=0", func(s *Spec) { s.Machine.Memory.MSHRs = 0 }},
		{"bad L1D line", func(s *Spec) { s.Machine.Memory.L1D.LineSize = 60 }},
		{"bad L2 sets", func(s *Spec) { s.Machine.Memory.L2.SizeKB = 3; s.Machine.Memory.L2.Ways = 16 }},
		{"bad DTLB entries", func(s *Spec) { s.Machine.Memory.DTLB.Entries = 7 }},
		{"bad ITLB page", func(s *Spec) { s.Machine.Memory.ITLB.PageSize = 1000 }},
		{"nil policy", func(s *Spec) { s.Machine.Controller.Policy = nil }},
		{"zero drain", func(s *Spec) { s.Machine.Controller.DrainCycles = 0 }},
		{"negative MissLat", func(s *Spec) { s.Machine.Controller.MissLat = -1 }},
		{"bad SmoothAlpha", func(s *Spec) { s.Machine.Controller.SmoothAlpha = 2 }},
		{"zero ROB", func(s *Spec) { s.Machine.Pipeline.ROBSize = 0 }},
		{"zero measure", func(s *Spec) { s.Scale.Measure = 0 }},
		{"negative slot", func(s *Spec) { s.Threads[0].Slot = -1 }},
	}
	for _, m := range mutations {
		spec := pairSpec("gcc", "eon", core.EventOnly{})
		m.mut(&spec)
		res, err := Run(spec)
		if err == nil || res != nil {
			t.Errorf("%s: want validation error, got (%v, %v)", m.name, res, err)
			continue
		}
		var pe *PanicError
		if errors.As(err, &pe) {
			t.Errorf("%s: surfaced as recovered panic, want plain validation error: %v", m.name, err)
		}
	}
}

func TestSpecValidateAcceptsDefaults(t *testing.T) {
	if err := pairSpec("gcc", "eon", core.EventOnly{}).Validate(); err != nil {
		t.Fatalf("default pair spec invalid: %v", err)
	}
	if err := DefaultMachine().Validate(); err != nil {
		t.Fatalf("default machine invalid: %v", err)
	}
	if err := PaperScale().Validate(); err != nil {
		t.Fatalf("paper scale invalid: %v", err)
	}
	if err := QuickScale().Validate(); err != nil {
		t.Fatalf("quick scale invalid: %v", err)
	}
}

// An internal invariant panic must be recovered into a *PanicError
// carrying the spec fingerprint, not kill the caller.
func TestPanicBoundaryRecoversToError(t *testing.T) {
	testHookPostBuild = func() { panic("injected invariant violation") }
	defer func() { testHookPostBuild = nil }()

	res, err := Run(singleSpec("gcc", tinyScale()))
	if res != nil || err == nil {
		t.Fatalf("want recovered panic error, got (%v, %v)", res, err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %T: %v", err, err)
	}
	if pe.Fingerprint == "" || len(pe.Stack) == 0 {
		t.Errorf("panic error missing diagnostics: fp=%q stack=%d bytes", pe.Fingerprint, len(pe.Stack))
	}
}

// The watchdog must not change results: the same spec with and without
// aggressive-but-unreached watchdog settings yields identical output,
// and the fingerprint ignores the watchdog entirely.
func TestWatchdogExcludedFromFingerprintAndResults(t *testing.T) {
	plain := singleSpec("gcc", tinyScale())
	guarded := plain
	guarded.Watchdog = Watchdog{Timeout: time.Hour, StallCycles: 10_000_000}

	fpA, err := plain.FingerprintJSON()
	if err != nil {
		t.Fatal(err)
	}
	fpB, err := guarded.FingerprintJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(fpA) != string(fpB) {
		t.Fatal("watchdog settings leaked into the fingerprint")
	}

	ra, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(guarded)
	if err != nil {
		t.Fatal(err)
	}
	if ra.WallCycles != rb.WallCycles || ra.IPCTotal != rb.IPCTotal {
		t.Fatalf("watchdog changed results: %d/%.6f vs %d/%.6f",
			ra.WallCycles, ra.IPCTotal, rb.WallCycles, rb.IPCTotal)
	}
}
