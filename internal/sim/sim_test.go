package sim

import (
	"strings"
	"testing"

	"soemt/internal/core"
	"soemt/internal/pipeline"
	"soemt/internal/workload"
)

// tinyScale keeps unit tests fast; shape checks use larger runs in the
// experiments package and benches.
func tinyScale() Scale {
	return Scale{CacheWarm: 50_000, Warm: 30_000, Measure: 120_000, MaxCycles: 20_000_000}
}

func pairSpec(a, b string, policy core.Policy) Spec {
	m := DefaultMachine()
	m.Controller.Policy = policy
	return Spec{
		Machine: m,
		Threads: []ThreadSpec{
			{Profile: workload.MustByName(a), Slot: 0},
			{Profile: workload.MustByName(b), Slot: 1, StartSeq: ifSame(a, b)},
		},
		Scale: tinyScale(),
	}
}

// ifSame returns the paper's 1M-instruction offset for same-benchmark
// pairs, scaled down for tests.
func ifSame(a, b string) uint64 {
	if a == b {
		return 100_000
	}
	return 0
}

func TestRunSingleProducesSaneIPC(t *testing.T) {
	m := DefaultMachine()
	res, err := RunSingle(m, ThreadSpec{Profile: workload.MustByName("eon"), Slot: 0}, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Threads) != 1 {
		t.Fatal("single run thread count")
	}
	ipc := res.Threads[0].IPC
	if ipc < 0.5 || ipc > 4 {
		t.Errorf("eon single-thread IPC = %.3f, implausible", ipc)
	}
	if res.Switches.Total() != 0 {
		t.Error("single-thread run switched threads")
	}
}

func TestSOEPairBeatsWorseSingle(t *testing.T) {
	soe, err := Run(pairSpec("gcc", "eon", core.EventOnly{}))
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultMachine()
	gccAlone, err := RunSingle(m, ThreadSpec{Profile: workload.MustByName("gcc"), Slot: 0}, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if soe.IPCTotal <= gccAlone.Threads[0].IPC {
		t.Errorf("SOE total %.3f not above gcc alone %.3f", soe.IPCTotal, gccAlone.Threads[0].IPC)
	}
	if soe.Switches.Miss == 0 {
		t.Error("no miss switches in SOE pair")
	}
}

func TestFairnessPolicyChangesOutcome(t *testing.T) {
	f0, err := Run(pairSpec("gcc", "eon", core.EventOnly{}))
	if err != nil {
		t.Fatal(err)
	}
	f1, err := Run(pairSpec("gcc", "eon", core.Fairness{F: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if f1.Switches.Quota == 0 {
		t.Fatal("no forced switches under F=1")
	}
	// gcc (the missy thread) must get a larger share under enforcement.
	share := func(r *Result) float64 {
		return r.Threads[0].IPC / (r.Threads[0].IPC + r.Threads[1].IPC)
	}
	if share(f1) <= share(f0) {
		t.Errorf("gcc share did not grow: F0=%.3f F1=%.3f", share(f0), share(f1))
	}
	if f1.ForcedPer1k() <= f0.ForcedPer1k() {
		t.Error("forced switch rate must grow with enforcement")
	}
}

func TestResultAccounting(t *testing.T) {
	res, err := Run(pairSpec("bzip2", "swim", core.Fairness{F: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, tr := range res.Threads {
		if tr.Counters.Instrs < tinyScale().Measure {
			t.Errorf("%s retired %d < target", tr.Name, tr.Counters.Instrs)
		}
		if tr.Counters.Cycles == 0 || tr.Counters.Misses == 0 {
			t.Errorf("%s has empty counters %+v", tr.Name, tr.Counters)
		}
		if tr.IPM <= 0 || tr.CPM <= 0 || tr.EstIPCST <= 0 {
			t.Errorf("%s derived rates invalid", tr.Name)
		}
		sum += tr.IPC
	}
	if diff := sum - res.IPCTotal; diff > 1e-9 || diff < -1e-9 {
		t.Error("IPCTotal != sum of thread IPCs")
	}
	if len(res.Samples) == 0 {
		t.Error("no Δ samples recorded")
	}
}

func TestRunValidation(t *testing.T) {
	m := DefaultMachine()
	if _, err := Run(Spec{Machine: m, Scale: tinyScale()}); err == nil {
		t.Error("no threads must fail")
	}
	sp := pairSpec("gcc", "eon", core.EventOnly{})
	sp.Scale.Measure = 0
	if _, err := Run(sp); err == nil {
		t.Error("zero measure must fail")
	}
	sp = pairSpec("gcc", "eon", core.EventOnly{})
	sp.Threads[0].Profile.DepWindow = 0
	if _, err := Run(sp); err == nil {
		t.Error("invalid profile must fail")
	}
	sp = pairSpec("gcc", "eon", core.EventOnly{})
	sp.Machine.Pipeline.ROBSize = 0
	if _, err := Run(sp); err == nil {
		t.Error("invalid pipeline config must fail")
	}
}

func TestSameBenchmarkPairOffset(t *testing.T) {
	// Same-benchmark pairs must actually run offset streams in
	// disjoint address slots — both threads progress.
	res, err := Run(pairSpec("gzip", "gzip", core.EventOnly{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads[0].Counters.Instrs == 0 || res.Threads[1].Counters.Instrs == 0 {
		t.Fatal("same-benchmark pair starved a thread completely")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(pairSpec("gcc", "eon", core.Fairness{F: 0.25}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(pairSpec("gcc", "eon", core.Fairness{F: 0.25}))
	if err != nil {
		t.Fatal(err)
	}
	if a.WallCycles != b.WallCycles || a.Switches != b.Switches {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d cycles/switches",
			a.WallCycles, a.Switches.Total(), b.WallCycles, b.Switches.Total())
	}
}

func TestTable3Rendering(t *testing.T) {
	tbl := Table3(DefaultMachine())
	out := tbl.String()
	for _, want := range []string{"300 cycles", "2048 KiB", "250000 cycles", "ROB"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 3 missing %q:\n%s", want, out)
		}
	}
}

func TestPaperAndQuickScales(t *testing.T) {
	p := PaperScale()
	if p.CacheWarm != 10_000_000 || p.Warm != 1_000_000 || p.Measure != 6_000_000 {
		t.Error("paper scale must match §4.1")
	}
	q := QuickScale()
	if q.Measure == 0 || q.Measure >= p.Measure {
		t.Error("quick scale must be a reduction")
	}
}

func TestInjectedEventsRespected(t *testing.T) {
	base, err := Run(pairSpec("gcc", "eon", core.EventOnly{}))
	if err != nil {
		t.Fatal(err)
	}
	sp := pairSpec("gcc", "eon", core.EventOnly{})
	sp.Threads[0].Events = []pipeline.InjectedStall{
		{AtInstr: 60_000, StallCycles: 50_000},
	}
	withEv, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if withEv.WallCycles <= base.WallCycles {
		t.Errorf("injected 50k-cycle stall did not slow the run: %d vs %d",
			withEv.WallCycles, base.WallCycles)
	}
}

// Regression: hitting Scale.MaxCycles before the measurement target
// must be flagged instead of silently returning truncated counters.
func TestRunSetsTruncated(t *testing.T) {
	spec := pairSpec("gcc", "eon", core.EventOnly{})
	spec.Scale = Scale{CacheWarm: 10_000, Warm: 0, Measure: 1 << 40, MaxCycles: 50_000}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("capped run must set Truncated")
	}
	if res.WallCycles != 50_000 {
		t.Fatalf("capped run measured %d cycles, want 50000", res.WallCycles)
	}

	full, err := Run(pairSpec("gcc", "eon", core.EventOnly{}))
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated {
		t.Fatal("completed run must not set Truncated")
	}
}

func TestFingerprintJSONStableAndGuarded(t *testing.T) {
	spec := pairSpec("gcc", "eon", core.Fairness{F: 0.5})
	a, err := spec.FingerprintJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.FingerprintJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("fingerprint payload not deterministic")
	}
	if !strings.Contains(string(a), `"PolicyName":"fairness"`) {
		t.Errorf("payload missing policy name: %s", a)
	}

	spec.Machine.Controller.Policy = nil
	if _, err := spec.FingerprintJSON(); err == nil {
		t.Fatal("nil policy must be rejected")
	}
}
