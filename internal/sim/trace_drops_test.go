package sim

import (
	"testing"

	"soemt/internal/core"
	"soemt/internal/obs"
	"soemt/internal/workload"
)

// Regression: ring overflow in the event tracer used to be visible
// only through Tracer.Dropped() — nothing in the metrics registry
// recorded it, so a run whose trace silently truncated looked clean in
// every dump. The drop count must now land in trace.dropped.
func TestTracerDropsCountedInRegistry(t *testing.T) {
	m := DefaultMachine()
	m.Controller.Policy = core.Fairness{F: 1}
	m.Controller.Delta = 20_000
	m.Controller.MaxCyclesQuota = 5_000
	spec := Spec{
		Machine: m,
		Threads: []ThreadSpec{
			{Profile: workload.MustByName("gcc"), Slot: 0},
			{Profile: workload.MustByName("eon"), Slot: 1},
		},
		Scale: Scale{CacheWarm: 40_000, Warm: 20_000, Measure: 120_000, MaxCycles: 10_000_000},
	}
	// A 4-slot ring cannot hold the run's switch stream: overflow is
	// certain, deterministically.
	tracer := obs.NewTracer(4)
	reg := obs.NewRegistry()
	spec.Obs = &obs.Observer{Trace: tracer, Metrics: reg}
	if _, err := Run(spec); err != nil {
		t.Fatal(err)
	}
	if tracer.Dropped() == 0 {
		t.Fatal("test premise broken: a 4-slot ring did not overflow")
	}
	if got := reg.Counter("trace.dropped").Load(); got != tracer.Dropped() {
		t.Fatalf("registry trace.dropped = %d, tracer dropped %d", got, tracer.Dropped())
	}
}

// A run whose ring does not overflow must not register the counter
// value (zero drops stay zero).
func TestTracerNoDropsNoCount(t *testing.T) {
	m := DefaultMachine()
	m.Controller.Policy = core.EventOnly{}
	spec := Spec{
		Machine: m,
		Threads: []ThreadSpec{{Profile: workload.MustByName("gcc"), Slot: 0}},
		Scale:   Scale{CacheWarm: 20_000, Warm: 10_000, Measure: 40_000, MaxCycles: 10_000_000},
	}
	tracer := obs.NewTracer(0)
	reg := obs.NewRegistry()
	spec.Obs = &obs.Observer{Trace: tracer, Metrics: reg}
	if _, err := Run(spec); err != nil {
		t.Fatal(err)
	}
	if tracer.Dropped() != 0 {
		t.Fatalf("default-capacity ring dropped %d events at this scale", tracer.Dropped())
	}
	if got := reg.Counter("trace.dropped").Load(); got != 0 {
		t.Fatalf("trace.dropped = %d for a drop-free run", got)
	}
}
