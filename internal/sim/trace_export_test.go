package sim

import (
	"bytes"
	"reflect"
	"testing"

	"soemt/internal/core"
	"soemt/internal/obs"
	"soemt/internal/workload"
)

// TestTraceExportRoundTripGccEon is the acceptance test for the tracing
// pipeline: run the paper's gcc:eon starvation pair under Fairness F=1
// with a tracer attached, export the Chrome trace_event JSON exactly as
// `soesim -trace-events` does, load it back, and check the record
// stream — chronological ordering, the presence of switch (including
// miss-induced), Δ-sample, quota and deficit records, and per-thread
// attribution of each.
func TestTraceExportRoundTripGccEon(t *testing.T) {
	m := DefaultMachine()
	m.Controller.Policy = core.Fairness{F: 1}
	// Shrink Δ so the short test run crosses several sampling
	// boundaries and records quota recomputations.
	m.Controller.Delta = 20_000
	m.Controller.MaxCyclesQuota = 5_000
	spec := Spec{
		Machine: m,
		Threads: []ThreadSpec{
			{Profile: workload.MustByName("gcc"), Slot: 0},
			{Profile: workload.MustByName("eon"), Slot: 1},
		},
		Scale: Scale{CacheWarm: 40_000, Warm: 20_000, Measure: 120_000, MaxCycles: 10_000_000},
	}
	tracer := obs.NewTracer(0)
	spec.Obs = &obs.Observer{Trace: tracer, Metrics: obs.NewRegistry()}
	if _, err := Run(spec); err != nil {
		t.Fatal(err)
	}
	recorded := tracer.Events()
	if len(recorded) == 0 {
		t.Fatal("tracer recorded no events")
	}
	if tracer.Dropped() != 0 {
		t.Fatalf("ring dropped %d events at test scale; capacity sizing is broken", tracer.Dropped())
	}

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, recorded, []string{"gcc", "eon"}); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadChromeTrace(&buf)
	if err != nil {
		t.Fatalf("exported trace does not load back: %v", err)
	}
	if !reflect.DeepEqual(events, recorded) {
		t.Fatalf("round trip lost information: %d events in, %d out", len(recorded), len(events))
	}

	// Chronological ordering: the tracer records in simulation order,
	// so cycles must be non-decreasing after the round trip too.
	for i := 1; i < len(events); i++ {
		if events[i].Cycle < events[i-1].Cycle {
			t.Fatalf("event %d at cycle %d precedes event %d at cycle %d",
				i, events[i].Cycle, i-1, events[i-1].Cycle)
		}
	}

	kinds := map[obs.Kind]int{}
	missSwitches := 0
	for _, ev := range events {
		kinds[ev.Kind]++
		switch ev.Kind {
		case obs.KindSwitch:
			if ev.Cause == obs.CauseMiss {
				missSwitches++
			}
			// Attribution: Thread is the outgoing thread, N the
			// incoming one; both must be valid slots and distinct.
			if ev.Thread != 0 && ev.Thread != 1 {
				t.Fatalf("switch at cycle %d from invalid thread %d", ev.Cycle, ev.Thread)
			}
			if ev.N != 0 && ev.N != 1 {
				t.Fatalf("switch at cycle %d to invalid thread %d", ev.Cycle, ev.N)
			}
			if uint64(ev.Thread) == ev.N {
				t.Fatalf("switch at cycle %d from thread %d to itself", ev.Cycle, ev.Thread)
			}
		case obs.KindSample, obs.KindQuota, obs.KindDeficit:
			if ev.Thread != 0 && ev.Thread != 1 {
				t.Fatalf("%s at cycle %d attributed to invalid thread %d", ev.Kind, ev.Cycle, ev.Thread)
			}
		}
	}
	for _, want := range []obs.Kind{obs.KindSwitch, obs.KindSample, obs.KindQuota, obs.KindDeficit} {
		if kinds[want] == 0 {
			t.Errorf("trace has no %s records (kind counts: %v)", want, kinds)
		}
	}
	if missSwitches == 0 {
		t.Error("trace has no miss-induced switches; gcc:eon must miss at this scale")
	}

	// Each Δ boundary samples both threads: sample records must cover
	// both, and deficit updates must name the incoming thread of the
	// preceding switch.
	sampled := map[int32]bool{}
	for _, ev := range events {
		if ev.Kind == obs.KindSample {
			sampled[ev.Thread] = true
		}
	}
	if !sampled[0] || !sampled[1] {
		t.Errorf("Δ samples cover threads %v, want both 0 and 1", sampled)
	}
	lastIn := int32(-1)
	for _, ev := range events {
		switch ev.Kind {
		case obs.KindSwitch:
			lastIn = int32(ev.N)
		case obs.KindDeficit:
			if lastIn >= 0 && ev.Thread != lastIn {
				t.Fatalf("deficit update at cycle %d names thread %d; incoming thread of the preceding switch is %d",
					ev.Cycle, ev.Thread, lastIn)
			}
		}
	}
}
