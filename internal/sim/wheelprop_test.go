package sim

import (
	"math/rand"
	"testing"

	"soemt/internal/core"
	"soemt/internal/pipeline"
	"soemt/internal/workload"
)

// fuzzedSpec derives a randomized but valid spec from rng: random
// workload mix, policy, Δ, max-cycles quota and injected events. The
// generator deliberately squeezes Δ and the quota far below their
// paper defaults so skip windows constantly collide with Δ-sample
// boundaries and quota expiries — the exact off-by-one surface the
// event wheel's horizon clipping must survive.
func fuzzedSpec(rng *rand.Rand, n int) Spec {
	names := []string{"swim", "mcf", "gcc", "eon", "gzip", "art", "crafty", "vpr"}
	m := DefaultMachine()
	m.Controller.Delta = 20_000 + uint64(rng.Intn(5))*10_000
	m.Controller.MaxCyclesQuota = 0
	if rng.Intn(3) > 0 {
		// Keep the quota under Δ/N so quota expiries and Δ boundaries
		// interleave rather than one always clipping the other.
		m.Controller.MaxCyclesQuota = 2_000 + uint64(rng.Intn(3_000))
	}
	switch {
	case n <= 2:
		switch rng.Intn(3) {
		case 0:
			m.Controller.Policy = core.EventOnly{}
		case 1:
			m.Controller.Policy = core.Fairness{F: float64(rng.Intn(5)) * 0.25}
		default:
			m.Controller.Policy = core.TimeShare{QuotaCycles: float64(5_000 + rng.Intn(10_000))}
		}
	default:
		switch rng.Intn(3) {
		case 0:
			m.Controller.Policy = core.Fairness{F: float64(rng.Intn(5)) * 0.25}
		case 1:
			w := make([]float64, n)
			for i := range w {
				w[i] = float64(1 + rng.Intn(4))
			}
			m.Controller.Policy = core.WFQGrant{Weights: w}
		default:
			m.Controller.Policy = core.Malthusian{MinAggFrac: 1, ProbeEvery: 2 + rng.Intn(3)}
		}
	}
	s := Spec{
		Machine: m,
		Scale:   Scale{CacheWarm: 10_000, Warm: 5_000, Measure: 20_000, MaxCycles: 5_000_000},
	}
	for i := 0; i < n; i++ {
		ts := ThreadSpec{
			Profile:  workload.MustByName(names[rng.Intn(len(names))]),
			Slot:     i,
			StartSeq: uint64(rng.Intn(4)) * 25_000,
		}
		if rng.Intn(2) == 0 {
			at := uint64(2_000 + rng.Intn(8_000))
			ts.Events = []pipeline.InjectedStall{
				{AtInstr: at, StallCycles: uint64(500 + rng.Intn(20_000))},
				{AtInstr: at + uint64(5_000+rng.Intn(10_000)), StallCycles: uint64(100 + rng.Intn(5_000))},
			}
		}
		s.Threads = append(s.Threads, ts)
	}
	return s
}

// TestEventWheelFuzzedSpecDifferential is the property test for the
// discrete-event engine: over randomized specs (N = 2 and N = 4,
// fuzzed policies, Δ, quotas and injected events) the event-wheel
// engine must produce byte-identical Results to the brute-force
// cycle-by-cycle reference. Seeds are fixed, so a failure reproduces
// deterministically. CI additionally runs this under -race.
func TestEventWheelFuzzedSpecDifferential(t *testing.T) {
	type cell struct {
		seed int64
		n    int
	}
	var cells []cell
	for seed := int64(1); seed <= 4; seed++ {
		cells = append(cells, cell{seed, 2}, cell{seed, 4})
	}
	for _, c := range cells {
		c := c
		t.Run(fmtCell(c.seed, c.n), func(t *testing.T) {
			t.Parallel()
			spec := fuzzedSpec(rand.New(rand.NewSource(c.seed^int64(c.n)<<32)), c.n)
			if err := spec.Validate(); err != nil {
				t.Fatalf("fuzzed spec invalid: %v", err)
			}
			ref := spec
			ref.Engine = "cycle-by-cycle"
			refRes, err := Run(ref)
			if err != nil {
				t.Fatalf("cycle-by-cycle run: %v", err)
			}
			wheel := spec
			wheel.Engine = "event-wheel"
			wheelRes, err := Run(wheel)
			if err != nil {
				t.Fatalf("event-wheel run: %v", err)
			}
			refJSON := mustResultJSON(t, refRes)
			wheelJSON := mustResultJSON(t, wheelRes)
			if string(refJSON) != string(wheelJSON) {
				t.Errorf("event-wheel diverges from reference\nwheel:     %s\nreference: %s",
					firstDiff(wheelJSON, refJSON), firstDiffOther(wheelJSON, refJSON))
			}
		})
	}
}

func fmtCell(seed int64, n int) string {
	return "seed" + string(rune('0'+seed)) + "-N" + string(rune('0'+n))
}
