package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"soemt/internal/core"
	"soemt/internal/pipeline"
)

// Differential regression suite (ISSUE 9): the N-thread generalization
// of the controller and the quota policies must leave every N <= 2 code
// path — and every N-thread path whose semantics predate the
// generalization (EventOnly rotation, TimeShare quotas) — bit-identical
// to the seed pair engine. The seed's results are pinned as sha256
// digests of the canonical Result JSON, captured from the pre-refactor
// engine and committed in testdata/seed_golden.json; both the
// fast-forward and the cycle-by-cycle engine must still reproduce them
// exactly, and the spec fingerprints must not move either (a moved
// fingerprint would silently abandon every cached result and BENCH
// baseline).
//
// Regenerate (only after an intentional, understood result change):
//
//	SOEMT_REGEN_GOLDEN=1 go test ./internal/sim -run TestNThreadSeedDifferential
//
// Cells deliberately NOT pinned here: Fairness/GroupedFairness at
// N >= 3 (the Eq. 9 wait term is N-aware by design, see DESIGN.md §15)
// and the new zoo policies, which have no seed baseline. Those paths
// are covered relatively by TestFastForwardEquivalenceMatrix.

const seedGoldenPath = "testdata/seed_golden.json"

// diffScale is smaller than ffScale: every cell runs twice per engine
// family and the suite must stay cheap enough for -race in CI.
func diffScale() Scale {
	return Scale{CacheWarm: 30_000, Warm: 15_000, Measure: 60_000, MaxCycles: 10_000_000}
}

func diffSpec(names []string, policy core.Policy, mutate func(*Spec)) Spec {
	s := ffSpec(names, policy, mutate)
	s.Scale = diffScale()
	return s
}

// diffCells is the (policy, spec) matrix of seed-stable cells: the full
// §9 equivalence-matrix shapes at N <= 2 plus the N = 4 shapes whose
// results the generalization must not move.
func diffCells() map[string]Spec {
	return map[string]Spec{
		"single-missy-swim":        diffSpec([]string{"swim"}, core.EventOnly{}, nil),
		"single-nonmissy-eon":      diffSpec([]string{"eon"}, core.EventOnly{}, nil),
		"pair-missy-swim-mcf-F0":   diffSpec([]string{"swim", "mcf"}, core.EventOnly{}, nil),
		"pair-nonmissy-gcc-eon-F1": diffSpec([]string{"gcc", "eon"}, core.Fairness{F: 1}, nil),
		"pair-mixed-mcf-gzip-F025": diffSpec([]string{"mcf", "gzip"}, core.Fairness{F: 0.25}, nil),
		"pair-same-swim-swim-F05":  diffSpec([]string{"swim", "swim"}, core.Fairness{F: 0.5}, nil),
		"pair-timeshare-art-crafty": diffSpec([]string{"art", "crafty"},
			core.TimeShare{QuotaCycles: 20_000}, nil),
		"pair-events-swim-gcc": diffSpec([]string{"swim", "gcc"}, core.Fairness{F: 1}, func(s *Spec) {
			s.Threads[0].Events = []pipeline.InjectedStall{
				{AtInstr: 10_000, StallCycles: 4_000},
				{AtInstr: 40_000, StallCycles: 12_000},
			}
			s.Threads[1].Events = []pipeline.InjectedStall{
				{AtInstr: 25_000, StallCycles: 7_500},
			}
		}),
		"pair-measure-misslat-l1switch": diffSpec([]string{"mcf", "eon"}, core.Fairness{F: 1}, func(s *Spec) {
			s.Machine.Controller.MeasureMissLat = true
			s.Machine.Controller.SwitchOnL1Miss = true
		}),
		"pair-countall-smooth-naive": diffSpec([]string{"swim", "vpr"}, core.Fairness{F: 0.5}, func(s *Spec) {
			s.Machine.Controller.CountAllMisses = true
			s.Machine.Controller.SmoothAlpha = 0.4
			s.Machine.Controller.NaiveDeficit = true
		}),
		"quad-event-only-mixed": diffSpec([]string{"gcc", "eon", "swim", "gzip"}, core.EventOnly{}, nil),
		"quad-timeshare-mixed": diffSpec([]string{"gcc", "mcf", "eon", "crafty"},
			core.TimeShare{QuotaCycles: 20_000}, nil),
	}
}

type goldenCell struct {
	Fingerprint string `json:"fingerprint"` // sha256 of FingerprintJSON
	FastForward string `json:"ff"`          // sha256 of Result JSON, fast-forward engine
	CycleByCyle string `json:"ref"`         // sha256 of Result JSON, cycle-by-cycle engine
}

type goldenFile struct {
	Comment string                `json:"_comment"`
	Scale   Scale                 `json:"scale"`
	Cells   map[string]goldenCell `json:"cells"`
}

func sha256Hex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func specFingerprintHex(t *testing.T, s Spec) string {
	t.Helper()
	payload, err := s.FingerprintJSON()
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	return sha256Hex(payload)
}

func runCellHashes(t *testing.T, spec Spec) goldenCell {
	t.Helper()
	cell := goldenCell{Fingerprint: specFingerprintHex(t, spec)}
	ff := spec
	ff.CycleByCycle = false
	ffRes, err := Run(ff)
	if err != nil {
		t.Fatalf("fast-forward run: %v", err)
	}
	cell.FastForward = sha256Hex(mustResultJSON(t, ffRes))
	ref := spec
	ref.CycleByCycle = true
	refRes, err := Run(ref)
	if err != nil {
		t.Fatalf("cycle-by-cycle run: %v", err)
	}
	cell.CycleByCyle = sha256Hex(mustResultJSON(t, refRes))
	return cell
}

// TestNThreadSeedDifferential recomputes every cell on both engines and
// compares against the committed seed digests.
func TestNThreadSeedDifferential(t *testing.T) {
	cells := diffCells()
	if os.Getenv("SOEMT_REGEN_GOLDEN") != "" {
		regenSeedGolden(t, cells)
		return
	}
	raw, err := os.ReadFile(seedGoldenPath)
	if err != nil {
		t.Fatalf("missing %s (regenerate with SOEMT_REGEN_GOLDEN=1): %v", seedGoldenPath, err)
	}
	var golden goldenFile
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatalf("parse %s: %v", seedGoldenPath, err)
	}
	if golden.Scale != diffScale() {
		t.Fatalf("golden scale %+v does not match diffScale %+v; regenerate", golden.Scale, diffScale())
	}
	if len(golden.Cells) != len(cells) {
		t.Fatalf("golden has %d cells, suite has %d; regenerate", len(golden.Cells), len(cells))
	}
	for name, spec := range cells {
		name, spec := name, spec
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			want, ok := golden.Cells[name]
			if !ok {
				t.Fatalf("cell %q missing from %s; regenerate", name, seedGoldenPath)
			}
			got := runCellHashes(t, spec)
			if got.Fingerprint != want.Fingerprint {
				t.Errorf("spec fingerprint moved: %s, seed %s — cached results and BENCH baselines would be abandoned",
					got.Fingerprint, want.Fingerprint)
			}
			if got.FastForward != want.FastForward {
				t.Errorf("fast-forward result diverged from the seed engine: %s, seed %s",
					got.FastForward, want.FastForward)
			}
			if got.CycleByCyle != want.CycleByCyle {
				t.Errorf("cycle-by-cycle result diverged from the seed engine: %s, seed %s",
					got.CycleByCyle, want.CycleByCyle)
			}
		})
	}
}

func regenSeedGolden(t *testing.T, cells map[string]Spec) {
	golden := goldenFile{
		Comment: "Seed-engine result digests for the N-thread differential suite; regenerate with SOEMT_REGEN_GOLDEN=1 go test ./internal/sim -run TestNThreadSeedDifferential",
		Scale:   diffScale(),
		Cells:   make(map[string]goldenCell, len(cells)),
	}
	names := make([]string, 0, len(cells))
	for name := range cells {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		golden.Cells[name] = runCellHashes(t, cells[name])
		t.Logf("captured %s: %+v", name, golden.Cells[name])
	}
	out, err := json.MarshalIndent(golden, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(seedGoldenPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seedGoldenPath, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d cells)", seedGoldenPath, len(cells))
}
