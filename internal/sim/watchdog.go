package sim

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"time"
)

// Watchdog bounds a run's execution so pathological specs fail with a
// diagnostic error instead of spinning forever. It deliberately lives
// on Spec but OUTSIDE the fingerprint (see FingerprintJSON): aborted
// runs return errors, never results, so any result that is produced —
// and therefore cached — is independent of the watchdog settings.
type Watchdog struct {
	// Timeout is a wall-clock deadline for the whole run, including
	// cache and timing warmup. 0 means no deadline.
	Timeout time.Duration

	// StallCycles is the number of simulated cycles the machine may
	// advance without a single instruction retiring before the run is
	// declared stalled (cycles ticking, no forward progress — e.g. a
	// never-resolving injected stall). 0 selects DefaultStallCycles;
	// StallOff disables detection. Checked between execution slices,
	// so detection granularity is sliceCycles.
	StallCycles uint64
}

// DefaultStallCycles is the forward-progress window used when
// Watchdog.StallCycles is zero. 50M cycles (12.5ms of simulated time
// at 4GHz) without one retirement is far beyond any legitimate stall
// in this machine — the longest natural one is a chain of MSHR-full
// memory misses, three orders of magnitude shorter.
const DefaultStallCycles = 50_000_000

// StallOff disables forward-progress detection.
const StallOff = math.MaxUint64

// sliceCycles is the execution-slice length between cancellation,
// deadline and stall checks in RunContext.
const sliceCycles = 1 << 16

// ErrStalled is matched (via errors.Is) by stall-watchdog failures.
var ErrStalled = errors.New("sim: forward-progress stall")

// ErrDeadline is matched (via errors.Is) by wall-clock watchdog
// failures.
var ErrDeadline = errors.New("sim: watchdog deadline exceeded")

// StallError reports that simulated cycles advanced for Window cycles
// without any thread retiring an instruction.
type StallError struct {
	Phase       string // "warmup" or "measure"
	Cycle       uint64 // machine cycle at detection
	Window      uint64 // configured stall window
	Fingerprint string // short spec fingerprint
}

func (e *StallError) Error() string {
	return fmt.Sprintf("sim: %s stalled: no instruction retired for %d cycles (detected at cycle %d) [spec %s]",
		e.Phase, e.Window, e.Cycle, e.Fingerprint)
}

// Is makes errors.Is(err, ErrStalled) true for stall failures.
func (e *StallError) Is(target error) bool { return target == ErrStalled }

// DeadlineError reports that a run exceeded its wall-clock budget.
type DeadlineError struct {
	Phase       string
	Cycle       uint64
	Timeout     time.Duration
	Fingerprint string
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("sim: %s exceeded wall-clock timeout %v at cycle %d [spec %s]",
		e.Phase, e.Timeout, e.Cycle, e.Fingerprint)
}

// Is makes errors.Is(err, ErrDeadline) true for deadline failures.
func (e *DeadlineError) Is(target error) bool { return target == ErrDeadline }

// PanicError wraps an internal invariant panic (pipeline, memory,
// core) recovered by the sim.Run boundary, so direct callers — the
// experiment Runner, the examples, library users — get an error
// carrying the spec fingerprint instead of a dead process.
type PanicError struct {
	Fingerprint string
	Value       interface{}
	Stack       []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: internal panic: %v [spec %s]", e.Value, e.Fingerprint)
}

// recoverToError converts a recovered panic value into a *PanicError.
func recoverToError(fp string, rec interface{}) error {
	return &PanicError{Fingerprint: fp, Value: rec, Stack: debug.Stack()}
}
