package sim

import (
	"encoding/json"
	"fmt"
	"testing"

	"soemt/internal/core"
	"soemt/internal/obs"
	"soemt/internal/pipeline"
	"soemt/internal/workload"
)

// ffScale is deliberately smaller than tinyScale: every matrix entry
// runs twice (fast-forward and reference engine), and the reference
// engine is the slow one by design.
func ffScale() Scale {
	return Scale{CacheWarm: 40_000, Warm: 20_000, Measure: 90_000, MaxCycles: 10_000_000}
}

// ffSpec builds a matrix entry. mutate may adjust the machine and
// threads to cover controller extensions.
func ffSpec(names []string, policy core.Policy, mutate func(*Spec)) Spec {
	m := DefaultMachine()
	m.Controller.Policy = policy
	s := Spec{Machine: m, Scale: ffScale()}
	for i, n := range names {
		ts := ThreadSpec{Profile: workload.MustByName(n), Slot: i}
		if i > 0 && n == names[0] {
			ts.StartSeq = 100_000
		}
		s.Threads = append(s.Threads, ts)
	}
	if mutate != nil {
		mutate(&s)
	}
	return s
}

// TestFastForwardEquivalenceMatrix asserts all three engines — the
// event-wheel production default, the idle fast-forward scanner, and
// the cycle-by-cycle reference — produce byte-identical Results
// across a matrix covering missy and non-missy pairs, single-thread
// reference runs, injected events, F ∈ {0, 1/4, 1/2, 1}, and every
// controller extension that interacts with the skip logic
// (MeasureMissLat, SwitchOnL1Miss, CountAllMisses, SmoothAlpha,
// TimeShare, NaiveDeficit). DESIGN.md §9 and §16 document the
// contract.
func TestFastForwardEquivalenceMatrix(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"single-missy-swim", ffSpec([]string{"swim"}, core.EventOnly{}, nil)},
		{"single-nonmissy-eon", ffSpec([]string{"eon"}, core.EventOnly{}, nil)},
		{"pair-missy-swim-mcf-F0", ffSpec([]string{"swim", "mcf"}, core.EventOnly{}, nil)},
		{"pair-nonmissy-gcc-eon-F1", ffSpec([]string{"gcc", "eon"}, core.Fairness{F: 1}, nil)},
		{"pair-mixed-mcf-gzip-F025", ffSpec([]string{"mcf", "gzip"}, core.Fairness{F: 0.25}, nil)},
		{"pair-same-swim-swim-F05", ffSpec([]string{"swim", "swim"}, core.Fairness{F: 0.5}, nil)},
		{"pair-timeshare-art-crafty", ffSpec([]string{"art", "crafty"}, core.TimeShare{QuotaCycles: 20_000}, nil)},
		{"pair-events-swim-gcc", ffSpec([]string{"swim", "gcc"}, core.Fairness{F: 1}, func(s *Spec) {
			s.Threads[0].Events = []pipeline.InjectedStall{
				{AtInstr: 10_000, StallCycles: 4_000},
				{AtInstr: 40_000, StallCycles: 12_000},
			}
			s.Threads[1].Events = []pipeline.InjectedStall{
				{AtInstr: 25_000, StallCycles: 7_500},
			}
		})},
		{"pair-measure-misslat-l1switch", ffSpec([]string{"mcf", "eon"}, core.Fairness{F: 1}, func(s *Spec) {
			s.Machine.Controller.MeasureMissLat = true
			s.Machine.Controller.SwitchOnL1Miss = true
		})},
		{"pair-countall-smooth-naive", ffSpec([]string{"swim", "vpr"}, core.Fairness{F: 0.5}, func(s *Spec) {
			s.Machine.Controller.CountAllMisses = true
			s.Machine.Controller.SmoothAlpha = 0.4
			s.Machine.Controller.NaiveDeficit = true
		})},
		// N >= 3 zoo cells: the Granter path (WFQ credit bookkeeping and
		// non-round-robin dispatch), the grouped quota/weight path, and
		// the Culler path (mask changes, switch suppression, the
		// single-active fast-forward fallback) each interact with the
		// skip-clipping logic and must hold the same byte-identical
		// contract as the seed policies.
		{"quad-fairness-naware", ffSpec([]string{"gcc", "mcf", "swim", "eon"}, core.Fairness{F: 0.5}, nil)},
		{"quad-grouped-fairness", ffSpec([]string{"gcc", "mcf", "swim", "eon"},
			core.GroupedFairness{F: 0.5, MissyWeight: 2, FriendlyWeight: 1}, nil)},
		{"tri-wfq-weighted", ffSpec([]string{"swim", "gzip", "mcf"},
			core.WFQGrant{Weights: []float64{3, 1, 1}}, nil)},
		// MinAggFrac 1.0 demotes on every sub-peak window, so demotion
		// AND the ProbeEvery reactivation both provably fire mid-run
		// (asserted below via the core.cull.* counters).
		{"quad-malthusian", ffSpec([]string{"swim", "mcf", "art", "gzip"},
			core.Malthusian{MinAggFrac: 1, ProbeEvery: 3}, nil)},
	}
	if len(cases) < 8 {
		t.Fatalf("equivalence matrix must cover >= 8 specs, has %d", len(cases))
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			// The event-wheel run carries a live observer (tracer +
			// registry) while fast-forward and the reference run bare: a
			// byte-identical three-way comparison therefore proves engine
			// equivalence AND that observability never perturbs a result.
			observer := &obs.Observer{Trace: obs.NewTracer(0), Metrics: obs.NewRegistry()}
			ref := tc.spec
			ref.Engine = "cycle-by-cycle"
			refRes, err := Run(ref)
			if err != nil {
				t.Fatalf("cycle-by-cycle run: %v", err)
			}
			refJSON := mustResultJSON(t, refRes)

			var wheelRes *Result
			for _, engine := range []string{"fast-forward", "event-wheel"} {
				spec := tc.spec
				spec.Engine = engine
				if engine == "event-wheel" {
					spec.Obs = observer
				}
				res, err := Run(spec)
				if err != nil {
					t.Fatalf("%s run: %v", engine, err)
				}
				if engine == "event-wheel" {
					wheelRes = res
				}
				j := mustResultJSON(t, res)
				if string(j) != string(refJSON) {
					t.Errorf("%s result diverges from cycle-by-cycle reference\n%s: %s\nreference:    %s",
						engine, engine, firstDiff(j, refJSON), firstDiffOther(j, refJSON))
				}
			}
			// The traced run must have produced a non-trivial stream —
			// otherwise this test could pass with observability dead.
			if observer.Trace.Len() == 0 {
				t.Error("observer attached but no events traced")
			}
			if got := observer.Metrics.Counter("sim.runs").Load(); got != 1 {
				t.Errorf("registry sim.runs = %d, want 1", got)
			}
			if res, want := observer.Metrics.Counter("sim.wall_cycles").Load(), wheelRes.WallCycles; res != want {
				t.Errorf("registry sim.wall_cycles = %d, want %d", res, want)
			}
			if tc.name == "quad-malthusian" {
				// The Malthusian cell must really exercise mid-run
				// demotion AND reactivation, or its equivalence proof
				// is vacuous for the Culler path.
				if d := observer.Metrics.Counter("core.cull.demotions").Load(); d == 0 {
					t.Error("quad-malthusian run demoted no thread; cell is vacuous")
				}
				if r := observer.Metrics.Counter("core.cull.reactivations").Load(); r == 0 {
					t.Error("quad-malthusian run reactivated no thread; cell is vacuous")
				}
			}
		})
	}
}

// TestFastForwardSkipsCycles asserts the fast path actually engages on
// a miss-heavy run — without this, the matrix above could pass
// trivially with the skip logic dead.
func TestFastForwardSkipsCycles(t *testing.T) {
	spec := ffSpec([]string{"swim"}, core.EventOnly{}, nil)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// swim's profile is miss-dominated: far fewer than one instruction
	// per cycle, so most wall cycles are idle stall and skippable. The
	// controller has no externally visible skip counter, so verify via
	// the engine toggle being honored plus the cheap invariant that the
	// run still retired its target.
	if res.Truncated {
		t.Fatal("miss-heavy run unexpectedly truncated")
	}
	if res.WallCycles == 0 || res.Threads[0].Counters.Instrs == 0 {
		t.Fatal("degenerate run")
	}
}

func mustResultJSON(t *testing.T, r *Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return b
}

// firstDiff returns a window around the first differing byte of a vs b.
func firstDiff(a, b []byte) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := i - 60
	if lo < 0 {
		lo = 0
	}
	hi := i + 60
	if hi > len(a) {
		hi = len(a)
	}
	return fmt.Sprintf("...%s... (byte %d)", a[lo:hi], i)
}

func firstDiffOther(a, b []byte) string { return firstDiff(b, a) }
