package sim

import (
	"testing"

	"soemt/internal/core"
	"soemt/internal/workload"
)

// The paper's §5.1.1 claim: hardware counters effectively estimate the
// single-thread IPC of a thread while it runs in SOE, usually slightly
// below the real value. With a minimal-footprint co-thread (no cache
// or predictor pollution), the estimate must be nearly exact; with a
// real co-thread, resource sharing lowers it moderately.
func TestEstimationTracksSingleThreadIPC(t *testing.T) {
	scale := Scale{CacheWarm: 50_000, Warm: 50_000, Measure: 250_000, MaxCycles: 50_000_000}
	gcc := workload.MustByName("gcc")
	st, err := RunSingle(DefaultMachine(), ThreadSpec{Profile: gcc, Slot: 0}, scale)
	if err != nil {
		t.Fatal(err)
	}
	real := st.Threads[0].IPC

	idle := workload.Profile{
		Name: "idle", Seed: 999,
		ChainFrac: 0.1, DepWindow: 16,
		HotBytes: 1 << 10, WarmBytes: 1 << 10, ColdBytes: 1 << 20,
		LoopLen: 64, TakenBias: 0.9, NoiseFrac: 0,
	}
	estWith := func(co workload.Profile) float64 {
		m := DefaultMachine()
		m.Controller.Policy = core.Fairness{F: 1}
		res, err := Run(Spec{Machine: m, Threads: []ThreadSpec{
			{Profile: gcc, Slot: 0}, {Profile: co, Slot: 1},
		}, Scale: scale})
		if err != nil {
			t.Fatal(err)
		}
		return res.Threads[0].EstIPCST
	}

	estIdle := estWith(idle)
	if errPct := (1 - estIdle/real) * 100; errPct > 10 || errPct < -10 {
		t.Errorf("estimate with idle co-thread off by %.0f%% (est %.3f, real %.3f)",
			errPct, estIdle, real)
	}
	estEon := estWith(workload.MustByName("eon"))
	if errPct := (1 - estEon/real) * 100; errPct > 30 {
		t.Errorf("estimate with eon co-thread off by %.0f%% (est %.3f, real %.3f): resource sharing too destructive",
			errPct, estEon, real)
	}
	// Paper: the estimate is usually slightly LOWER than real.
	if estEon > real*1.1 {
		t.Errorf("estimate %.3f above real %.3f: wrong direction", estEon, real)
	}
}
