package mem

import "soemt/internal/arena"

// TLBConfig describes a translation lookaside buffer.
type TLBConfig struct {
	Name     string
	Entries  int // total entries
	Ways     int // associativity
	PageSize int // bytes per page (power of two)
}

// TLBStats counts TLB events.
type TLBStats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns Misses/Accesses.
func (s TLBStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type tlbEntry struct {
	vpn      uint64
	valid    bool
	lastUsed uint64
}

// TLB is a set-associative translation buffer. Like Cache it models
// presence only; translation is identity (the simulator has no
// physical address space).
type TLB struct {
	cfg      TLBConfig
	sets     [][]tlbEntry
	setMask  uint64
	pageBits uint
	clock    uint64
	Stats    TLBStats
}

// NewTLB builds a TLB. Invalid geometry (see TLBConfig.Validate) is a
// configuration error and is returned, not panicked.
func NewTLB(cfg TLBConfig) (*TLB, error) {
	return NewTLBIn(nil, cfg)
}

// NewTLBIn builds a TLB whose entry arrays are carved from a (nil =
// plain heap allocation; see internal/arena).
func NewTLBIn(a *arena.Arena, cfg TLBConfig) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nSets := cfg.Entries / cfg.Ways
	sets := arena.Slice[[]tlbEntry](a, nSets)
	backing := arena.Slice[tlbEntry](a, nSets*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways:cfg.Ways], backing[cfg.Ways:]
	}
	pageBits := uint(0)
	for 1<<pageBits < cfg.PageSize {
		pageBits++
	}
	return &TLB{cfg: cfg, sets: sets, setMask: uint64(nSets - 1), pageBits: pageBits}, nil
}

// Config returns the TLB geometry.
func (t *TLB) Config() TLBConfig { return t.cfg }

// VPN returns the virtual page number of addr.
func (t *TLB) VPN(addr uint64) uint64 { return addr >> t.pageBits }

// Lookup probes the TLB for the page containing addr, updating LRU and
// statistics.
func (t *TLB) Lookup(addr uint64) bool {
	t.Stats.Accesses++
	t.clock++
	vpn := t.VPN(addr)
	set := t.sets[vpn&t.setMask]
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].lastUsed = t.clock
			return true
		}
	}
	t.Stats.Misses++
	return false
}

// Fill installs the translation for addr's page, evicting LRU.
func (t *TLB) Fill(addr uint64) {
	t.clock++
	vpn := t.VPN(addr)
	set := t.sets[vpn&t.setMask]
	victim := 0
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].lastUsed = t.clock
			return
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lastUsed < set[victim].lastUsed {
			victim = i
		}
	}
	set[victim] = tlbEntry{vpn: vpn, valid: true, lastUsed: t.clock}
}

// Reset invalidates all entries and clears statistics.
func (t *TLB) Reset() {
	for _, set := range t.sets {
		for i := range set {
			set[i] = tlbEntry{}
		}
	}
	t.Stats = TLBStats{}
	t.clock = 0
}

// ResetStats clears statistics without touching contents.
func (t *TLB) ResetStats() { t.Stats = TLBStats{} }
