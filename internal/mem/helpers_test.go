package mem

// Test constructors for configurations the tests know to be valid.

func mustCache(cfg CacheConfig) *Cache {
	c, err := NewCache(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

func mustTLB(cfg TLBConfig) *TLB {
	t, err := NewTLB(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

func mustHierarchy(cfg HierarchyConfig) *Hierarchy {
	return MustNewHierarchy(cfg)
}
