package mem

import (
	"testing"
	"testing/quick"

	"soemt/internal/rng"
)

// Property: the hierarchy never loses inclusion between L1D and L2
// under arbitrary interleavings of data accesses, walks and fetches.
func TestInclusionPropertyRandomized(t *testing.T) {
	cfg := testConfig()
	cfg.L2 = CacheConfig{Name: "L2", SizeKB: 16, LineSize: 64, Ways: 2, Latency: 12}
	cfg.PrefetchDegree = 2
	h := mustHierarchy(cfg)
	s := rng.NewStream(321)
	now := uint64(0)
	var sample []uint64
	for i := 0; i < 30000; i++ {
		addr := uint64(s.Intn(1 << 21))
		switch s.Intn(4) {
		case 0:
			h.AccessFetch(now, addr)
		case 1:
			h.TranslateData(now, addr)
		default:
			h.AccessData(now, addr, s.Intn(2) == 0)
		}
		if i%64 == 0 {
			sample = append(sample, addr)
		}
		now += uint64(s.Intn(20))
		// Spot-check inclusion over the sampled addresses.
		if i%4096 == 0 {
			for _, a := range sample {
				if (h.L1D.Probe(a) || h.L1I.Probe(a)) && !h.L2.Probe(a) {
					t.Fatalf("inclusion violated for %#x at step %d", a, i)
				}
			}
		}
	}
}

// Property: cache statistics are internally consistent — misses never
// exceed accesses, evictions never exceed fills (bounded by misses on
// the demand path).
func TestCacheStatsConsistency(t *testing.T) {
	c := mustCache(CacheConfig{Name: "p", SizeKB: 8, LineSize: 64, Ways: 4, Latency: 1})
	s := rng.NewStream(9)
	for i := 0; i < 50000; i++ {
		addr := uint64(s.Intn(1 << 18))
		if !c.Lookup(addr, s.Intn(3) == 0) {
			c.Fill(addr, false)
		}
	}
	if c.Stats.Misses > c.Stats.Accesses {
		t.Fatal("misses exceed accesses")
	}
	if c.Stats.Writebacks > c.Stats.Evictions {
		t.Fatal("writebacks exceed evictions")
	}
	if c.Stats.Evictions > c.Stats.Misses {
		t.Fatal("evictions exceed fills")
	}
}

// Property: AccessResult.Latency never underflows regardless of clock.
func TestAccessResultLatencyProperty(t *testing.T) {
	f := func(done, now uint64) bool {
		r := AccessResult{DoneAt: done}
		lat := r.Latency(now)
		if done <= now {
			return lat == 0
		}
		return lat == done-now
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: TLB fill-then-lookup always hits within one round of
// unrelated traffic bounded by associativity.
func TestTLBFillThenHitProperty(t *testing.T) {
	tb := mustTLB(TLBConfig{Name: "p", Entries: 64, Ways: 4, PageSize: 4096})
	s := rng.NewStream(5)
	for i := 0; i < 20000; i++ {
		addr := uint64(s.Intn(1 << 26))
		tb.Fill(addr)
		if !tb.Lookup(addr) {
			t.Fatalf("fill not visible at step %d", i)
		}
	}
}
