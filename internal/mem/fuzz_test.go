package mem

// Native Go fuzzing for the geometry validators: Validate must be
// total (never panic) on arbitrary configurations, and any
// configuration it accepts must build without error — the two halves
// of the "bad flags return errors, they never panic" contract.

import "testing"

func FuzzCacheConfigValidate(f *testing.F) {
	f.Add(32, 8, 64, 3)
	f.Add(0, 0, 0, 0)
	f.Add(-4, 7, 60, -1)
	f.Add(3, 16, 64, 1)

	f.Fuzz(func(t *testing.T, sizeKB, ways, lineSize, latency int) {
		// Bound the geometry so accepted configs allocate modest tag
		// arrays; validity logic is unaffected by the clamp.
		cfg := CacheConfig{
			SizeKB:   sizeKB % 8192,
			Ways:     ways % 1024,
			LineSize: lineSize % 4096,
			Latency:  latency,
		}
		err := cfg.Validate() // must not panic
		if err != nil {
			return
		}
		c, err := NewCache(cfg)
		if err != nil || c == nil {
			t.Fatalf("Validate accepted %+v but NewCache failed: %v", cfg, err)
		}
	})
}

func FuzzTLBConfigValidate(f *testing.F) {
	f.Add(64, 4, 4096)
	f.Add(0, 0, 0)
	f.Add(7, 2, 1000)

	f.Fuzz(func(t *testing.T, entries, ways, pageSize int) {
		cfg := TLBConfig{
			Entries:  entries % 65536,
			Ways:     ways % 1024,
			PageSize: pageSize % (1 << 20),
		}
		err := cfg.Validate() // must not panic
		if err != nil {
			return
		}
		tlb, err := NewTLB(cfg)
		if err != nil || tlb == nil {
			t.Fatalf("Validate accepted %+v but NewTLB failed: %v", cfg, err)
		}
	})
}

func FuzzHierarchyConfigValidate(f *testing.F) {
	f.Add(300, 8, 0, 0)
	f.Add(0, 0, -1, -1)

	f.Fuzz(func(t *testing.T, memLatency, mshrs, busOcc, prefetch int) {
		cfg := DefaultConfig()
		cfg.MemLatency = memLatency
		cfg.MSHRs = mshrs % 4096
		cfg.BusOccupancy = busOcc
		cfg.PrefetchDegree = prefetch
		err := cfg.Validate() // must not panic
		if err != nil {
			return
		}
		h, err := NewHierarchy(cfg)
		if err != nil || h == nil {
			t.Fatalf("Validate accepted config but NewHierarchy failed: %v", err)
		}
	})
}
