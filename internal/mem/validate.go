package mem

import "fmt"

// ConfigError reports an invalid memory-hierarchy configuration value.
// All Validate methods in this package return *ConfigError so callers
// can distinguish configuration mistakes from runtime failures.
type ConfigError struct {
	Component string // "cache L1D", "TLB dtlb", "hierarchy", ...
	Field     string
	Reason    string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("mem: invalid %s config: %s: %s", e.Component, e.Field, e.Reason)
}

func powerOfTwo(v int) bool { return v > 0 && v&(v-1) == 0 }

// Validate reports whether the cache geometry is constructible: a
// positive power-of-two line size, positive size and associativity, a
// capacity that divides evenly into sets, and a power-of-two set count
// (required by the index mask).
func (c CacheConfig) Validate() error {
	comp := "cache"
	if c.Name != "" {
		comp = "cache " + c.Name
	}
	if !powerOfTwo(c.LineSize) {
		return &ConfigError{comp, "LineSize", "must be a positive power of two"}
	}
	if c.SizeKB <= 0 {
		return &ConfigError{comp, "SizeKB", "must be positive"}
	}
	if c.Ways <= 0 {
		return &ConfigError{comp, "Ways", "must be positive"}
	}
	if c.Latency < 0 {
		return &ConfigError{comp, "Latency", "must be non-negative"}
	}
	if c.SizeKB*1024%c.LineSize != 0 {
		return &ConfigError{comp, "SizeKB", "capacity must be a multiple of LineSize"}
	}
	if c.Lines()%c.Ways != 0 {
		return &ConfigError{comp, "Ways", "must divide the line count evenly"}
	}
	if !powerOfTwo(c.Sets()) {
		return &ConfigError{comp, "Sets", "set count must be a positive power of two"}
	}
	return nil
}

// Validate reports whether the TLB geometry is constructible: a
// positive power-of-two page size, entries a positive multiple of the
// associativity, and a power-of-two set count.
func (c TLBConfig) Validate() error {
	comp := "TLB"
	if c.Name != "" {
		comp = "TLB " + c.Name
	}
	if !powerOfTwo(c.PageSize) {
		return &ConfigError{comp, "PageSize", "must be a positive power of two"}
	}
	if c.Ways <= 0 {
		return &ConfigError{comp, "Ways", "must be positive"}
	}
	if c.Entries <= 0 || c.Entries%c.Ways != 0 {
		return &ConfigError{comp, "Entries", "must be a positive multiple of Ways"}
	}
	if !powerOfTwo(c.Entries / c.Ways) {
		return &ConfigError{comp, "Sets", "set count must be a positive power of two"}
	}
	return nil
}

// Validate checks the full hierarchy configuration, aggregating the
// per-structure geometry checks with the hierarchy-level parameters.
func (c HierarchyConfig) Validate() error {
	for _, sub := range []error{
		c.L1I.Validate(), c.L1D.Validate(), c.L2.Validate(),
		c.ITLB.Validate(), c.DTLB.Validate(),
	} {
		if sub != nil {
			return sub
		}
	}
	if c.MemLatency <= 0 {
		return &ConfigError{"hierarchy", "MemLatency", "must be positive"}
	}
	if c.MSHRs <= 0 {
		return &ConfigError{"hierarchy", "MSHRs", "must be positive"}
	}
	if c.BusOccupancy < 0 {
		return &ConfigError{"hierarchy", "BusOccupancy", "must be non-negative"}
	}
	if c.PrefetchDegree < 0 {
		return &ConfigError{"hierarchy", "PrefetchDegree", "must be non-negative"}
	}
	return nil
}
