package mem

import (
	"testing"

	"soemt/internal/rng"
)

func testConfig() HierarchyConfig {
	cfg := DefaultConfig()
	// Shrink for tests so misses are easy to provoke.
	cfg.L1I = CacheConfig{Name: "L1I", SizeKB: 4, LineSize: 64, Ways: 2, Latency: 3}
	cfg.L1D = CacheConfig{Name: "L1D", SizeKB: 4, LineSize: 64, Ways: 2, Latency: 3}
	cfg.L2 = CacheConfig{Name: "L2", SizeKB: 64, LineSize: 64, Ways: 4, Latency: 12}
	cfg.ITLB = TLBConfig{Name: "ITLB", Entries: 16, Ways: 4, PageSize: 4096}
	cfg.DTLB = TLBConfig{Name: "DTLB", Entries: 16, Ways: 4, PageSize: 4096}
	return cfg
}

func TestHierarchyL1Hit(t *testing.T) {
	h := mustHierarchy(testConfig())
	h.AccessData(0, 0x1000, false) // cold miss fills all levels
	r := h.AccessData(1000, 0x1000, false)
	if r.L1Miss || r.L2Miss {
		t.Fatalf("expected L1 hit, got %+v", r)
	}
	if got := r.Latency(1000); got != 3 {
		t.Fatalf("L1 hit latency = %d, want 3", got)
	}
}

func TestHierarchyL2HitLatency(t *testing.T) {
	h := mustHierarchy(testConfig())
	h.AccessData(0, 0x1000, false)
	// Evict from L1D only: walk conflicting L1 sets (L1D 4KiB/2-way/64B
	// = 32 sets, stride 2048) but stay within L2 capacity.
	h.AccessData(400, 0x1000+2048, false)
	h.AccessData(800, 0x1000+4096, false)
	r := h.AccessData(5000, 0x1000, false)
	if !r.L1Miss || r.L2Miss {
		t.Fatalf("expected L1 miss/L2 hit, got %+v", r)
	}
	if got := r.Latency(5000); got != 3+12 {
		t.Fatalf("L2 hit latency = %d, want 15", got)
	}
}

func TestHierarchyMemoryMissLatency(t *testing.T) {
	cfg := testConfig()
	h := mustHierarchy(cfg)
	r := h.AccessData(0, 0x4000, false)
	if !r.L1Miss || !r.L2Miss || r.Coalesced {
		t.Fatalf("cold access classification: %+v", r)
	}
	// Latency = L1 (3) + L2 (12) + bus grant (immediate) + mem (300).
	want := uint64(3 + 12 + cfg.MemLatency)
	if got := r.Latency(0); got != want {
		t.Fatalf("memory miss latency = %d, want %d", got, want)
	}
}

func TestHierarchyMSHRCoalescing(t *testing.T) {
	h := mustHierarchy(testConfig())
	r1 := h.AccessData(0, 0x8000, false)
	r2 := h.AccessData(5, 0x8010, false) // same 64B line, still in flight
	if !r2.L2Miss || !r2.Coalesced {
		t.Fatalf("expected coalesced miss, got %+v", r2)
	}
	if r2.DoneAt != r1.DoneAt {
		t.Fatalf("coalesced access must complete with the fill: %d vs %d", r2.DoneAt, r1.DoneAt)
	}
	if h.Stats.L2MissesDemand != 1 || h.Stats.Coalesced != 1 {
		t.Fatalf("stats = %+v", h.Stats)
	}
}

func TestHierarchyDistinctMissesSerializeOnBus(t *testing.T) {
	cfg := testConfig()
	h := mustHierarchy(cfg)
	r1 := h.AccessData(0, 0x10000, false)
	r2 := h.AccessData(0, 0x20000, false)
	if r2.DoneAt != r1.DoneAt+uint64(cfg.BusOccupancy) {
		t.Fatalf("second miss should trail by bus occupancy: %d vs %d", r2.DoneAt, r1.DoneAt)
	}
}

func TestHierarchyMSHRFullBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.MSHRs = 2
	h := mustHierarchy(cfg)
	h.AccessData(0, 0x100000, false)
	h.AccessData(0, 0x200000, false)
	r3 := h.AccessData(0, 0x300000, false)
	if h.Stats.MSHRFullStalls != 1 {
		t.Fatalf("expected MSHR stall, stats=%+v", h.Stats)
	}
	// Third miss cannot even start until an MSHR frees (~315).
	if r3.Latency(0) <= uint64(cfg.MemLatency) {
		t.Fatalf("stalled miss latency %d too small", r3.Latency(0))
	}
}

func TestHierarchyAfterFillHits(t *testing.T) {
	h := mustHierarchy(testConfig())
	r := h.AccessData(0, 0x9000, false)
	r2 := h.AccessData(r.DoneAt+1, 0x9000, false)
	if r2.L1Miss {
		t.Fatal("line must hit after fill")
	}
}

func TestHierarchyFetchPath(t *testing.T) {
	h := mustHierarchy(testConfig())
	r := h.AccessFetch(0, 0x400)
	if !r.L1Miss || !r.L2Miss {
		t.Fatalf("cold fetch should miss: %+v", r)
	}
	r2 := h.AccessFetch(r.DoneAt, 0x404)
	if r2.L1Miss {
		t.Fatal("same fetch line must hit")
	}
	if h.L1I.Stats.Accesses != 2 {
		t.Fatalf("fetch must use L1I: %+v", h.L1I.Stats)
	}
	if h.L1D.Stats.Accesses != 0 {
		t.Fatal("fetch must not touch L1D")
	}
}

func TestHierarchyInclusionInvariant(t *testing.T) {
	// When L2 evicts a line, L1 copies must be invalidated: otherwise
	// L1 could hit on a line the L2 no longer tracks.
	cfg := testConfig()
	cfg.L2 = CacheConfig{Name: "L2", SizeKB: 8, LineSize: 64, Ways: 2, Latency: 12}
	h := mustHierarchy(cfg)
	now := uint64(0)
	// L2: 8KiB/2-way = 64 sets; conflict stride = 64*64 = 4096.
	base := uint64(0x1000)
	h.AccessData(now, base, false)
	// Two more conflicting L2 lines evict base from L2.
	r := h.AccessData(10000, base+4096, false)
	r = h.AccessData(r.DoneAt+1, base+8192, false)
	_ = r
	if h.L1D.Probe(base) && !h.L2.Probe(base) {
		t.Fatal("inclusion violated: line in L1D but not L2")
	}
}

func TestTranslateDataWalk(t *testing.T) {
	h := mustHierarchy(testConfig())
	w := h.TranslateData(0, 0x5000)
	if !w.Walked {
		t.Fatal("cold TLB must walk")
	}
	if !w.L2Miss {
		t.Fatal("cold walk must miss L2")
	}
	w2 := h.TranslateData(w.DoneAt, 0x5008) // same page
	if w2.Walked {
		t.Fatal("warm TLB must not walk")
	}
	if got := w2.DoneAt - w.DoneAt; got != 1 {
		t.Fatalf("TLB hit latency = %d, want 1", got)
	}
	if h.Stats.PageWalks != 1 || h.Stats.WalkL2Misses != 1 {
		t.Fatalf("stats = %+v", h.Stats)
	}
}

func TestTranslateWalkHitsL2WhenCached(t *testing.T) {
	h := mustHierarchy(testConfig())
	w1 := h.TranslateData(0, 0xA000)
	// Evict the translation from the small test TLB by touching many
	// pages mapping to the same TLB set (16 entries/4-way = 4 sets).
	for i := uint64(1); i <= 8; i++ {
		h.TranslateData(w1.DoneAt+i*1000, 0xA000+i*4*4096)
	}
	w2 := h.TranslateData(1e6, 0xA000)
	if !w2.Walked {
		t.Fatal("evicted translation must walk again")
	}
	// PTE line is now in L2 (8 PTEs per 64B line share it, but at
	// minimum the exact line was just filled), so no L2 miss.
	if w2.L2Miss {
		t.Fatal("re-walk should hit the cached PTE line")
	}
}

func TestTranslateFetchUsesITLB(t *testing.T) {
	h := mustHierarchy(testConfig())
	h.TranslateFetch(0, 0x1000)
	if h.ITLB.Stats.Accesses != 1 || h.DTLB.Stats.Accesses != 0 {
		t.Fatal("fetch translation must use ITLB only")
	}
}

func TestHierarchyResetAndResetStats(t *testing.T) {
	h := mustHierarchy(testConfig())
	h.AccessData(0, 0x7000, false)
	h.TranslateData(0, 0x7000)
	h.ResetStats()
	if h.Stats.L2MissesDemand != 0 || h.L1D.Stats.Accesses != 0 {
		t.Fatal("ResetStats left counters")
	}
	if !h.L1D.Probe(0x7000) {
		t.Fatal("ResetStats must keep contents")
	}
	h.Reset()
	if h.L1D.Probe(0x7000) {
		t.Fatal("Reset must drop contents")
	}
}

func TestHierarchyErrorsOnBadConfig(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*HierarchyConfig)
	}{
		{"MemLatency=0", func(c *HierarchyConfig) { c.MemLatency = 0 }},
		{"MSHRs=0", func(c *HierarchyConfig) { c.MSHRs = 0 }},
		{"BusOccupancy<0", func(c *HierarchyConfig) { c.BusOccupancy = -1 }},
		{"PrefetchDegree<0", func(c *HierarchyConfig) { c.PrefetchDegree = -1 }},
		{"bad L1D", func(c *HierarchyConfig) { c.L1D.LineSize = 60 }},
		{"bad DTLB", func(c *HierarchyConfig) { c.DTLB.Entries = 7 }},
	}
	for _, m := range mutations {
		cfg := testConfig()
		m.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad config", m.name)
		}
		if h, err := NewHierarchy(cfg); err == nil || h != nil {
			t.Errorf("%s: expected error, got (%v, %v)", m.name, h, err)
		}
	}
}

func TestBusPipelining(t *testing.T) {
	b := Bus{Occupancy: 4}
	if g := b.Acquire(10); g != 10 {
		t.Fatalf("idle bus grant = %d", g)
	}
	if g := b.Acquire(11); g != 14 {
		t.Fatalf("busy bus grant = %d, want 14", g)
	}
	if g := b.Acquire(100); g != 100 {
		t.Fatalf("idle-again grant = %d", g)
	}
	if b.Transfers != 3 {
		t.Fatalf("transfers = %d", b.Transfers)
	}
}

func TestOutstandingFillsReaped(t *testing.T) {
	h := mustHierarchy(testConfig())
	h.AccessData(0, 0x30000, false)
	if n := h.OutstandingFills(0); n != 1 {
		t.Fatalf("outstanding = %d, want 1", n)
	}
	if n := h.OutstandingFills(10000); n != 0 {
		t.Fatalf("outstanding after completion = %d, want 0", n)
	}
}

// Monotonic-time property: results never complete before issue+L1
// latency, and repeated random accesses keep classifications sane.
func TestHierarchyTimingMonotonicProperty(t *testing.T) {
	h := mustHierarchy(testConfig())
	s := rng.NewStream(77)
	now := uint64(0)
	for i := 0; i < 20000; i++ {
		addr := uint64(s.Intn(1 << 22))
		r := h.AccessData(now, addr, s.Intn(4) == 0)
		if r.DoneAt < now+3 {
			t.Fatalf("completion before minimum latency: now=%d done=%d", now, r.DoneAt)
		}
		if r.L2Miss && !r.L1Miss {
			t.Fatal("L2 miss without L1 miss is impossible")
		}
		now += uint64(s.Intn(10))
	}
}

func TestDefaultConfigGeometry(t *testing.T) {
	cfg := DefaultConfig()
	h := mustHierarchy(cfg) // must not panic
	if h.L2.Config().Lines() != 32768 {
		t.Fatalf("L2 lines = %d", h.L2.Config().Lines())
	}
	if cfg.MemLatency != 300 {
		t.Fatal("paper requires 300-cycle memory")
	}
}

func TestPrefetcherNextLine(t *testing.T) {
	cfg := testConfig()
	cfg.PrefetchDegree = 2
	h := mustHierarchy(cfg)
	r1 := h.AccessData(0, 0x40000, false)
	if !r1.L2Miss || r1.Coalesced {
		t.Fatal("first access should demand-miss")
	}
	if h.Stats.Prefetches != 2 {
		t.Fatalf("prefetches = %d, want 2", h.Stats.Prefetches)
	}
	// The next line is in flight: an access to it coalesces rather
	// than paying a fresh memory round trip.
	r2 := h.AccessData(10, 0x40040, false)
	if !r2.Coalesced {
		t.Fatalf("next-line access should coalesce into the prefetch: %+v", r2)
	}
	if r2.DoneAt > r1.DoneAt+uint64(2*cfg.BusOccupancy) {
		t.Fatalf("prefetched line arrives late: %d vs demand %d", r2.DoneAt, r1.DoneAt)
	}
	// After the fills complete, a demand hit on the prefetched line
	// counts as a prefetch hit.
	h.AccessData(r2.DoneAt+1, 0x40080, false)
	if h.L2.Stats.PrefetchHits == 0 {
		t.Fatal("no prefetch hits recorded")
	}
}

func TestPrefetcherDisabledByDefault(t *testing.T) {
	h := mustHierarchy(testConfig())
	h.AccessData(0, 0x50000, false)
	if h.Stats.Prefetches != 0 {
		t.Fatal("prefetcher active with degree 0")
	}
}

func TestPrefetcherRespectsMSHRBudget(t *testing.T) {
	cfg := testConfig()
	cfg.PrefetchDegree = 8
	cfg.MSHRs = 3
	h := mustHierarchy(cfg)
	h.AccessData(0, 0x60000, false)
	// 1 demand + at most 2 prefetches fit the MSHRs.
	if n := h.OutstandingFills(0); n > 3 {
		t.Fatalf("outstanding fills %d exceed MSHRs", n)
	}
	if h.Stats.MSHRFullStalls != 0 {
		t.Fatal("prefetches must not consume demand-stall accounting")
	}
}

func TestPrefetcherReducesStreamingMisses(t *testing.T) {
	run := func(degree int) uint64 {
		cfg := testConfig()
		cfg.PrefetchDegree = degree
		h := mustHierarchy(cfg)
		now := uint64(0)
		// Stream sequentially through 4 MiB.
		for a := uint64(1 << 20); a < (1<<20)+(4<<20); a += 64 {
			r := h.AccessData(now, a, false)
			now = r.DoneAt + 1
		}
		return h.Stats.L2MissesDemand
	}
	off := run(0)
	on := run(4)
	if on >= off/2 {
		t.Errorf("prefetcher ineffective on stream: %d demand misses vs %d without", on, off)
	}
}
