package mem

import "soemt/internal/arena"

// Bus models the pipelined front-side bus between the L2 cache and
// memory: transfers may overlap with memory access latency, but bus
// occupancy slots serialize.
type Bus struct {
	Occupancy int    // cycles each transfer holds the bus
	nextFree  uint64 // first cycle the bus is available
	Transfers uint64 // statistics
}

// Acquire grants the bus at or after now and returns the grant cycle.
func (b *Bus) Acquire(now uint64) uint64 {
	start := now
	if b.nextFree > start {
		start = b.nextFree
	}
	b.nextFree = start + uint64(b.Occupancy)
	b.Transfers++
	return start
}

// Reset clears bus state and statistics.
func (b *Bus) Reset() {
	b.nextFree = 0
	b.Transfers = 0
}

// HierarchyConfig configures the full memory hierarchy.
type HierarchyConfig struct {
	L1I  CacheConfig
	L1D  CacheConfig
	L2   CacheConfig
	ITLB TLBConfig
	DTLB TLBConfig

	BusOccupancy int // bus cycles per line transfer
	MemLatency   int // constant memory access latency (the paper's 300)
	MSHRs        int // maximum outstanding line fills

	// PrefetchDegree enables a next-line hardware prefetcher: each
	// demand L2 miss to line X schedules fills for X+1..X+degree when
	// MSHR slots are free. 0 disables (the paper's machine; the
	// prefetcher is an ablation — it interacts with SOE by removing
	// switch triggers from strided workloads).
	PrefetchDegree int
}

// HierarchyStats aggregates hierarchy-level events.
type HierarchyStats struct {
	L2MissesDemand uint64 // demand (non-coalesced) L2 misses
	Coalesced      uint64 // accesses folded into an outstanding fill
	PageWalks      uint64 // hardware page walks
	WalkL2Misses   uint64 // page walks that missed in L2
	MSHRFullStalls uint64 // accesses delayed because all MSHRs were busy
	Prefetches     uint64 // prefetch fills issued
}

// AccessResult reports the timing and classification of one access.
type AccessResult struct {
	DoneAt    uint64 // cycle the data is available
	L1Miss    bool   // missed the first-level cache
	L2Miss    bool   // suffered (or joined) an L2 miss
	Coalesced bool   // joined an outstanding fill rather than starting one
}

// Latency returns the access latency relative to issue cycle `now`.
func (r AccessResult) Latency(now uint64) uint64 {
	if r.DoneAt <= now {
		return 0
	}
	return r.DoneAt - now
}

// pageTableBase tags synthetic page-table addresses so walks occupy
// distinct L2 lines from program data.
const pageTableBase = uint64(1) << 46

// Hierarchy owns all memory-side structures. It is shared between SOE
// threads: per the paper, caches, TLBs and predictor state are NOT
// flushed on thread switches.
type Hierarchy struct {
	cfg  HierarchyConfig
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	ITLB *TLB
	DTLB *TLB
	Bus  Bus

	// MSHR: line address -> cycle at which the fill completes.
	outstanding map[uint64]uint64

	Stats HierarchyStats
}

// NewHierarchy builds the hierarchy from cfg. Invalid configuration
// (see HierarchyConfig.Validate) is returned as an error, not
// panicked, so bad CLI flags and sweep values surface cleanly.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	return NewHierarchyIn(nil, cfg)
}

// NewHierarchyIn builds a hierarchy whose cache and TLB arrays are
// carved from a (nil = plain heap allocation). With a recycled arena
// the construction allocates only the structure headers and the MSHR
// map, so repeated runs (sweeps, equivalence matrices) stop churning
// the multi-megabyte tag arrays through the garbage collector.
func NewHierarchyIn(a *arena.Arena, cfg HierarchyConfig) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l1i, err := NewCacheIn(a, cfg.L1I)
	if err != nil {
		return nil, err
	}
	l1d, err := NewCacheIn(a, cfg.L1D)
	if err != nil {
		return nil, err
	}
	l2, err := NewCacheIn(a, cfg.L2)
	if err != nil {
		return nil, err
	}
	itlb, err := NewTLBIn(a, cfg.ITLB)
	if err != nil {
		return nil, err
	}
	dtlb, err := NewTLBIn(a, cfg.DTLB)
	if err != nil {
		return nil, err
	}
	h := &Hierarchy{
		cfg:         cfg,
		L1I:         l1i,
		L1D:         l1d,
		L2:          l2,
		ITLB:        itlb,
		DTLB:        dtlb,
		Bus:         Bus{Occupancy: cfg.BusOccupancy},
		outstanding: make(map[uint64]uint64),
	}
	return h, nil
}

// MustNewHierarchy builds the hierarchy from a configuration known to
// be valid (e.g. DefaultConfig), panicking otherwise. Intended for
// tests and static configurations.
func MustNewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h, err := NewHierarchy(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// reap drops completed fills from the MSHR table.
func (h *Hierarchy) reap(now uint64) {
	for line, ready := range h.outstanding {
		if ready <= now {
			delete(h.outstanding, line)
		}
	}
}

// OutstandingFills returns the number of in-flight line fills at now.
func (h *Hierarchy) OutstandingFills(now uint64) int {
	h.reap(now)
	return len(h.outstanding)
}

// fillFromMemory starts (or joins) a memory fill for the L2 line
// containing addr and returns the completion cycle plus whether the
// request coalesced into an existing fill.
func (h *Hierarchy) fillFromMemory(now uint64, addr uint64) (ready uint64, coalesced bool) {
	line := h.L2.LineAddr(addr)
	h.reap(now)
	if r, ok := h.outstanding[line]; ok {
		h.Stats.Coalesced++
		return r, true
	}
	start := now
	if len(h.outstanding) >= h.cfg.MSHRs {
		// All MSHRs busy: the new miss waits for the earliest
		// outstanding fill to retire its register.
		h.Stats.MSHRFullStalls++
		earliest := uint64(0)
		first := true
		for _, r := range h.outstanding {
			if first || r < earliest {
				earliest, first = r, false
			}
		}
		if earliest > start {
			start = earliest
		}
		h.reap(start)
	}
	grant := h.Bus.Acquire(start)
	ready = grant + uint64(h.cfg.MemLatency)
	h.outstanding[line] = ready
	h.Stats.L2MissesDemand++
	// Install the line now; timing is carried by the MSHR entry.
	h.installL2(addr)
	h.prefetchAfter(start, line)
	return ready, false
}

// prefetchAfter issues next-line prefetches following a demand miss,
// bounded by free MSHR capacity so prefetches never delay demand
// fills' miss registers.
func (h *Hierarchy) prefetchAfter(now uint64, line uint64) {
	for i := 1; i <= h.cfg.PrefetchDegree; i++ {
		next := line + uint64(i*h.cfg.L2.LineSize)
		if len(h.outstanding) >= h.cfg.MSHRs {
			return
		}
		if _, busy := h.outstanding[next]; busy || h.L2.Probe(next) {
			continue
		}
		grant := h.Bus.Acquire(now)
		h.outstanding[next] = grant + uint64(h.cfg.MemLatency)
		h.Stats.Prefetches++
		if evicted, dirty, evAddr := h.L2.FillTagged(next, false, true); evicted {
			// Inclusive hierarchy: L2 evictions drop L1 copies.
			h.L1D.Invalidate(evAddr)
			h.L1I.Invalidate(evAddr)
			if dirty {
				h.Bus.Acquire(0)
			}
		}
	}
}

// installL2 fills a line into L2, sending any dirty victim to the bus.
func (h *Hierarchy) installL2(addr uint64) {
	if _, dirty, _ := h.fillWithVictim(h.L2, addr, false); dirty {
		// Dirty writeback occupies a bus slot but does not delay the
		// demand fill (posted write).
		h.Bus.Acquire(0)
	}
}

func (h *Hierarchy) fillWithVictim(c *Cache, addr uint64, dirty bool) (bool, bool, uint64) {
	evicted, evDirty, evAddr := c.Fill(addr, dirty)
	if c == h.L2 && evicted {
		// Inclusive hierarchy: L2 eviction invalidates L1 copies.
		h.L1D.Invalidate(evAddr)
		h.L1I.Invalidate(evAddr)
	}
	return evicted, evDirty, evAddr
}

// pendingFill reports whether the L2 line containing addr has a fill
// still outstanding after cycle `after`, and when it completes. Hits
// on such lines must wait for the data to arrive (they coalesce into
// the fill — the paper's overlapped-miss case).
func (h *Hierarchy) pendingFill(after uint64, addr uint64) (uint64, bool) {
	if r, ok := h.outstanding[h.L2.LineAddr(addr)]; ok && r > after {
		return r, true
	}
	return 0, false
}

// AccessData performs a data-side access (load or store data fill).
// It models: L1D lookup, on miss an L2 lookup, on miss a memory fill
// with MSHR coalescing. Returns timing and miss classification.
func (h *Hierarchy) AccessData(now uint64, addr uint64, write bool) AccessResult {
	res := AccessResult{DoneAt: now + uint64(h.cfg.L1D.Latency)}
	if h.L1D.Lookup(addr, write) {
		if ready, ok := h.pendingFill(res.DoneAt, addr); ok {
			res.DoneAt = ready
			res.L1Miss, res.L2Miss, res.Coalesced = true, true, true
			h.Stats.Coalesced++
		}
		return res
	}
	res.L1Miss = true
	l2At := res.DoneAt // L2 probed after L1 miss detection
	l2Done := l2At + uint64(h.cfg.L2.Latency)
	if h.L2.Lookup(addr, false) {
		res.DoneAt = l2Done
		if ready, ok := h.pendingFill(l2Done, addr); ok {
			res.DoneAt = ready
			res.L2Miss, res.Coalesced = true, true
			h.Stats.Coalesced++
		}
		h.fillWithVictim(h.L1D, addr, write)
		return res
	}
	ready, coalesced := h.fillFromMemory(l2Done, addr)
	res.DoneAt = ready
	res.L2Miss = true
	res.Coalesced = coalesced
	h.fillWithVictim(h.L1D, addr, write)
	return res
}

// AccessFetch performs an instruction-side access through L1I.
func (h *Hierarchy) AccessFetch(now uint64, addr uint64) AccessResult {
	res := AccessResult{DoneAt: now + uint64(h.cfg.L1I.Latency)}
	if h.L1I.Lookup(addr, false) {
		if ready, ok := h.pendingFill(res.DoneAt, addr); ok {
			res.DoneAt = ready
			res.L1Miss, res.L2Miss, res.Coalesced = true, true, true
			h.Stats.Coalesced++
		}
		return res
	}
	res.L1Miss = true
	l2Done := res.DoneAt + uint64(h.cfg.L2.Latency)
	if h.L2.Lookup(addr, false) {
		res.DoneAt = l2Done
		if ready, ok := h.pendingFill(l2Done, addr); ok {
			res.DoneAt = ready
			res.L2Miss, res.Coalesced = true, true
			h.Stats.Coalesced++
		}
		h.fillWithVictim(h.L1I, addr, false)
		return res
	}
	ready, coalesced := h.fillFromMemory(l2Done, addr)
	res.DoneAt = ready
	res.L2Miss = true
	res.Coalesced = coalesced
	h.fillWithVictim(h.L1I, addr, false)
	return res
}

// WalkResult reports a TLB translation.
type WalkResult struct {
	DoneAt uint64
	Walked bool // a page walk was required
	L2Miss bool // the walk itself missed in L2 (flagged in ROB per §4.1)
}

// translate performs a TLB lookup with hardware walk on miss. The walk
// reads the page-table entry through the L2 (two levels; the upper
// level is assumed cached, matching common simplifications).
func (h *Hierarchy) translate(now uint64, tlb *TLB, addr uint64) WalkResult {
	if tlb.Lookup(addr) {
		return WalkResult{DoneAt: now + 1}
	}
	h.Stats.PageWalks++
	pteAddr := pageTableBase + tlb.VPN(addr)*8
	res := WalkResult{Walked: true}
	walkDone := now + uint64(h.cfg.L2.Latency)
	if !h.L2.Lookup(pteAddr, false) {
		ready, _ := h.fillFromMemory(walkDone, pteAddr)
		walkDone = ready
		res.L2Miss = true
		h.Stats.WalkL2Misses++
	}
	res.DoneAt = walkDone
	tlb.Fill(addr)
	return res
}

// TranslateData translates a data address through the DTLB.
func (h *Hierarchy) TranslateData(now uint64, addr uint64) WalkResult {
	return h.translate(now, h.DTLB, addr)
}

// TranslateFetch translates an instruction address through the ITLB.
func (h *Hierarchy) TranslateFetch(now uint64, addr uint64) WalkResult {
	return h.translate(now, h.ITLB, addr)
}

// Reset restores the hierarchy to cold state.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.ITLB.Reset()
	h.DTLB.Reset()
	h.Bus.Reset()
	h.outstanding = make(map[uint64]uint64)
	h.Stats = HierarchyStats{}
}

// ResetTiming clears timing state (bus occupancy and outstanding
// fills) while keeping cache/TLB contents. Used after functional
// warmup, whose synthetic timestamps would otherwise poison the
// timed run.
func (h *Hierarchy) ResetTiming() {
	h.Bus.Reset()
	h.outstanding = make(map[uint64]uint64)
}

// ResetStats clears statistics but keeps cache/TLB contents (end of
// warmup).
func (h *Hierarchy) ResetStats() {
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	h.L2.ResetStats()
	h.ITLB.ResetStats()
	h.DTLB.ResetStats()
	h.Stats = HierarchyStats{}
	h.Bus.Transfers = 0
}
