package mem

import "testing"

func smallTLB() *TLB {
	return mustTLB(TLBConfig{Name: "t", Entries: 16, Ways: 4, PageSize: 4096})
}

func TestTLBMissThenHit(t *testing.T) {
	tb := smallTLB()
	if tb.Lookup(0x1234) {
		t.Fatal("cold TLB must miss")
	}
	tb.Fill(0x1234)
	if !tb.Lookup(0x1234) {
		t.Fatal("filled translation must hit")
	}
	if !tb.Lookup(0x1fff) {
		t.Fatal("same page must hit")
	}
	if tb.Lookup(0x2000) {
		t.Fatal("next page must miss")
	}
	if tb.Stats.Accesses != 4 || tb.Stats.Misses != 2 {
		t.Fatalf("stats = %+v", tb.Stats)
	}
}

func TestTLBLRU(t *testing.T) {
	tb := smallTLB() // 4 sets, 4 ways; pages in same set: stride 4 pages
	pg := func(i uint64) uint64 { return i * 4 * 4096 }
	for i := uint64(0); i < 4; i++ {
		tb.Fill(pg(i))
	}
	tb.Lookup(pg(0)) // refresh
	tb.Fill(pg(4))   // evicts pg(1)
	if !tb.Lookup(pg(0)) {
		t.Error("refreshed entry evicted")
	}
	if tb.Lookup(pg(1)) {
		t.Error("LRU entry not evicted")
	}
}

func TestTLBFillIdempotent(t *testing.T) {
	tb := smallTLB()
	tb.Fill(0x9000)
	tb.Fill(0x9000)
	tb.Fill(0x9000)
	// Only one way should be consumed: three more fills to the same set
	// must not evict it.
	tb.Fill(0x9000 + 4*4096)
	tb.Fill(0x9000 + 8*4096)
	tb.Fill(0x9000 + 12*4096)
	if !tb.Lookup(0x9000) {
		t.Fatal("duplicate fills consumed multiple ways")
	}
}

func TestTLBReset(t *testing.T) {
	tb := smallTLB()
	tb.Fill(0x4000)
	tb.Reset()
	if tb.Lookup(0x4000) {
		t.Fatal("entry survives reset")
	}
	tb.ResetStats()
	if tb.Stats.Accesses != 0 {
		t.Fatal("stats survive ResetStats")
	}
}

func TestTLBVPN(t *testing.T) {
	tb := smallTLB()
	if tb.VPN(0x1fff) != 1 {
		t.Fatalf("VPN(0x1fff) = %d", tb.VPN(0x1fff))
	}
	if tb.VPN(0x2000) != 2 {
		t.Fatalf("VPN(0x2000) = %d", tb.VPN(0x2000))
	}
}

func TestTLBErrorsOnBadGeometry(t *testing.T) {
	cases := []TLBConfig{
		{Entries: 16, Ways: 4, PageSize: 1000}, // non-pow2 page
		{Entries: 15, Ways: 4, PageSize: 4096}, // entries % ways != 0
		{Entries: 0, Ways: 4, PageSize: 4096},
		{Entries: 24, Ways: 4, PageSize: 4096}, // 6 sets: not pow2
	}
	for i, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, cfg)
		}
		if tb, err := NewTLB(cfg); err == nil || tb != nil {
			t.Errorf("case %d: expected error, got (%v, %v)", i, tb, err)
		}
	}
}

func TestTLBMissRateZero(t *testing.T) {
	var s TLBStats
	if s.MissRate() != 0 {
		t.Fatal("zero-access miss rate should be 0")
	}
}
