package mem

import (
	"testing"
	"testing/quick"

	"soemt/internal/rng"
)

func smallCache() *Cache {
	// 4 KiB, 4-way, 64B lines -> 16 sets.
	return mustCache(CacheConfig{Name: "t", SizeKB: 4, LineSize: 64, Ways: 4, Latency: 2})
}

func TestCacheGeometry(t *testing.T) {
	c := smallCache()
	if c.Config().Lines() != 64 {
		t.Fatalf("lines = %d, want 64", c.Config().Lines())
	}
	if c.Config().Sets() != 16 {
		t.Fatalf("sets = %d, want 16", c.Config().Sets())
	}
}

func TestCacheErrorsOnBadGeometry(t *testing.T) {
	cases := []CacheConfig{
		{SizeKB: 4, LineSize: 60, Ways: 4},              // non-power-of-two line
		{SizeKB: 4, LineSize: 64, Ways: 0},              // zero ways
		{SizeKB: 0, LineSize: 64, Ways: 4},              // zero size
		{SizeKB: 3, LineSize: 64, Ways: 16},             // 3 sets: not power of two
		{SizeKB: 4, LineSize: 64, Ways: 4, Latency: -1}, // negative latency
	}
	for i, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, cfg)
		}
		if c, err := NewCache(cfg); err == nil || c != nil {
			t.Errorf("case %d: expected error for %+v, got (%v, %v)", i, cfg, c, err)
		}
	}
}

func TestCacheMissThenHit(t *testing.T) {
	c := smallCache()
	if c.Lookup(0x1000, false) {
		t.Fatal("cold cache must miss")
	}
	c.Fill(0x1000, false)
	if !c.Lookup(0x1000, false) {
		t.Fatal("filled line must hit")
	}
	// Same line, different offset must hit.
	if !c.Lookup(0x103f, false) {
		t.Fatal("same-line offset must hit")
	}
	// Next line must miss.
	if c.Lookup(0x1040, false) {
		t.Fatal("adjacent line must miss")
	}
	if c.Stats.Accesses != 4 || c.Stats.Misses != 2 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache() // 4 ways
	// Five conflicting lines in set 0 (stride = sets*64 = 1024).
	addrs := []uint64{0, 1024, 2048, 3072, 4096}
	for _, a := range addrs[:4] {
		c.Fill(a, false)
	}
	// Touch addr 0 to make 1024 the LRU victim.
	c.Lookup(0, false)
	c.Fill(addrs[4], false)
	if !c.Probe(0) {
		t.Error("recently used line evicted")
	}
	if c.Probe(1024) {
		t.Error("LRU line not evicted")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := smallCache()
	c.Fill(0, true) // dirty fill
	for i := uint64(1); i <= 4; i++ {
		c.Fill(i*1024, false)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
	// Write-hit marks dirty.
	c.Fill(0x8000, false)
	c.Lookup(0x8000, true)
	present, dirty := c.Invalidate(0x8000)
	if !present || !dirty {
		t.Fatal("write hit must mark line dirty")
	}
}

func TestCacheFillIdempotent(t *testing.T) {
	c := smallCache()
	c.Fill(0x2000, false)
	evicted, _, _ := c.Fill(0x2000, true)
	if evicted {
		t.Fatal("refilling a present line must not evict")
	}
	_, dirty := c.Invalidate(0x2000)
	if !dirty {
		t.Fatal("refill with dirty=true must mark dirty")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := smallCache()
	if p, _ := c.Invalidate(0x3000); p {
		t.Fatal("invalidate of absent line must report absent")
	}
	c.Fill(0x3000, false)
	if p, d := c.Invalidate(0x3000); !p || d {
		t.Fatal("invalidate of clean line must report present, clean")
	}
	if c.Probe(0x3000) {
		t.Fatal("line present after invalidate")
	}
}

func TestCacheReset(t *testing.T) {
	c := smallCache()
	c.Fill(0x1000, false)
	c.Lookup(0x1000, false)
	c.Reset()
	if c.Probe(0x1000) {
		t.Fatal("line present after reset")
	}
	if c.Stats.Accesses != 0 {
		t.Fatal("stats nonzero after reset")
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	// A working set equal to capacity must self-stabilize: after one
	// pass, every line hits.
	c := smallCache()
	lines := c.Config().Lines()
	for i := 0; i < lines; i++ {
		if !c.Lookup(uint64(i*64), false) {
			c.Fill(uint64(i*64), false)
		}
	}
	c.ResetStats()
	for i := 0; i < lines; i++ {
		if !c.Lookup(uint64(i*64), false) {
			t.Fatalf("line %d missed on second pass", i)
		}
	}
	if c.Stats.MissRate() != 0 {
		t.Fatal("resident working set must not miss")
	}
}

func TestCacheLineAddr(t *testing.T) {
	c := smallCache()
	f := func(addr uint64) bool {
		la := c.LineAddr(addr)
		return la%64 == 0 && la <= addr && addr-la < 64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a filled line always hits immediately afterwards,
// regardless of interleaved accesses to other sets.
func TestCacheFillThenHitProperty(t *testing.T) {
	c := mustCache(CacheConfig{Name: "p", SizeKB: 8, LineSize: 64, Ways: 2, Latency: 1})
	s := rng.NewStream(123)
	for i := 0; i < 5000; i++ {
		addr := uint64(s.Intn(1 << 20))
		c.Fill(addr, false)
		if !c.Lookup(addr, false) {
			t.Fatalf("iteration %d: fill(%#x) not followed by hit", i, addr)
		}
	}
}

func TestCacheMissRateZeroAccesses(t *testing.T) {
	var s CacheStats
	if s.MissRate() != 0 {
		t.Fatal("zero-access miss rate should be 0")
	}
}
