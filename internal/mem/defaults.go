package mem

// DefaultConfig returns the machine's memory-hierarchy configuration
// from DESIGN.md (Table 3 of the paper, P6-derived, sizes "slightly
// increased" per the paper's description of a future core):
//
//	L1I  32 KiB, 8-way, 64 B lines, 3-cycle
//	L1D  32 KiB, 8-way, 64 B lines, 3-cycle
//	L2   2 MiB unified, 8-way, 64 B lines, 12-cycle
//	ITLB 128 entries, 4-way, 4 KiB pages
//	DTLB 256 entries, 4-way, 4 KiB pages
//	Bus  pipelined, 4-cycle occupancy
//	Mem  300-cycle constant latency (75 ns at 4 GHz)
//	MSHR 16 outstanding fills
func DefaultConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:          CacheConfig{Name: "L1I", SizeKB: 64, LineSize: 64, Ways: 8, Latency: 3},
		L1D:          CacheConfig{Name: "L1D", SizeKB: 64, LineSize: 64, Ways: 8, Latency: 3},
		L2:           CacheConfig{Name: "L2", SizeKB: 2048, LineSize: 64, Ways: 8, Latency: 12},
		ITLB:         TLBConfig{Name: "ITLB", Entries: 128, Ways: 4, PageSize: 4096},
		DTLB:         TLBConfig{Name: "DTLB", Entries: 256, Ways: 4, PageSize: 4096},
		BusOccupancy: 4,
		MemLatency:   300,
		MSHRs:        16,
	}
}
