// Package mem implements the simulated memory hierarchy: set-
// associative write-back caches with LRU replacement, miss status
// holding registers (MSHRs) that coalesce outstanding misses by line,
// instruction/data TLBs with hardware page walks, a pipelined front-
// side bus, and a constant-latency memory (the paper uses 300 cycles,
// i.e. 75ns at 4GHz).
//
// Timing model: an access computes its completion cycle immediately
// ("functional-first" timing). The hierarchy tracks bus occupancy and
// outstanding line fills so that overlapping misses to the same line
// coalesce (the prefetching effect the paper's footnote 5 preserves)
// and distinct misses serialize on the bus.
package mem

import "soemt/internal/arena"

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name     string
	SizeKB   int // total capacity in KiB
	LineSize int // bytes per line (power of two)
	Ways     int // associativity
	Latency  int // access (hit) latency in cycles
}

// Lines returns the total number of lines in the configuration.
func (c CacheConfig) Lines() int { return c.SizeKB * 1024 / c.LineSize }

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.Lines() / c.Ways }

// CacheStats counts cache events.
type CacheStats struct {
	Accesses     uint64
	Misses       uint64
	Evictions    uint64
	Writebacks   uint64
	PrefetchHits uint64 // first demand hit on a prefetched line
}

// MissRate returns Misses/Accesses.
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type cacheLine struct {
	tag        uint64
	valid      bool
	dirty      bool
	prefetched bool   // installed by the prefetcher, not yet demand-hit
	lastUsed   uint64 // LRU timestamp
}

// Cache is a set-associative write-back, write-allocate cache.
// It models tags and replacement only; no data is stored.
type Cache struct {
	cfg      CacheConfig
	sets     [][]cacheLine
	setMask  uint64
	lineBits uint
	clock    uint64 // monotonic use counter for LRU
	Stats    CacheStats
}

// NewCache builds a cache from cfg. Invalid geometry (see
// CacheConfig.Validate) is a configuration error and is returned, not
// panicked, so bad CLI flags and sweep values surface cleanly.
func NewCache(cfg CacheConfig) (*Cache, error) {
	return NewCacheIn(nil, cfg)
}

// NewCacheIn builds a cache whose tag arrays are carved from a (nil =
// plain heap allocation; see internal/arena).
func NewCacheIn(a *arena.Arena, cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nSets := cfg.Sets()
	sets := arena.Slice[[]cacheLine](a, nSets)
	backing := arena.Slice[cacheLine](a, nSets*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways:cfg.Ways], backing[cfg.Ways:]
	}
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineSize {
		lineBits++
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setMask:  uint64(nSets - 1),
		lineBits: lineBits,
	}, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineBits << c.lineBits }

func (c *Cache) setIndex(addr uint64) uint64 { return (addr >> c.lineBits) & c.setMask }

func (c *Cache) tag(addr uint64) uint64 { return addr >> c.lineBits }

// Lookup probes the cache for addr, updating LRU state and statistics.
// If write is true and the line is present it is marked dirty.
func (c *Cache) Lookup(addr uint64, write bool) bool {
	c.Stats.Accesses++
	c.clock++
	set := c.sets[c.setIndex(addr)]
	tag := c.tag(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUsed = c.clock
			if write {
				set[i].dirty = true
			}
			if set[i].prefetched {
				set[i].prefetched = false
				c.Stats.PrefetchHits++
			}
			return true
		}
	}
	c.Stats.Misses++
	return false
}

// Probe reports whether addr is present without touching LRU state or
// statistics (used by tests and by store-buffer dispatch peeking).
func (c *Cache) Probe(addr uint64) bool {
	set := c.sets[c.setIndex(addr)]
	tag := c.tag(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Fill installs the line containing addr, evicting the LRU way if the
// set is full. It returns whether a dirty line was evicted and the
// evicted line's address (valid only when a line was evicted).
func (c *Cache) Fill(addr uint64, dirty bool) (evicted, evictedDirty bool, evictedAddr uint64) {
	return c.FillTagged(addr, dirty, false)
}

// FillTagged is Fill with control over the prefetched marker.
func (c *Cache) FillTagged(addr uint64, dirty, prefetched bool) (evicted, evictedDirty bool, evictedAddr uint64) {
	c.clock++
	si := c.setIndex(addr)
	set := c.sets[si]
	tag := c.tag(addr)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			// Already present (e.g. racing fills after coalescing).
			set[i].lastUsed = c.clock
			set[i].dirty = set[i].dirty || dirty
			return false, false, 0
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lastUsed < set[victim].lastUsed {
			victim = i
		}
	}
	v := &set[victim]
	if v.valid {
		evicted = true
		evictedDirty = v.dirty
		evictedAddr = v.tag << c.lineBits
		c.Stats.Evictions++
		if v.dirty {
			c.Stats.Writebacks++
		}
	}
	*v = cacheLine{tag: tag, valid: true, dirty: dirty, prefetched: prefetched, lastUsed: c.clock}
	return evicted, evictedDirty, evictedAddr
}

// Invalidate drops the line containing addr if present, returning
// whether it was present and dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set := c.sets[c.setIndex(addr)]
	tag := c.tag(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			present, dirty = true, set[i].dirty
			set[i] = cacheLine{}
			return present, dirty
		}
	}
	return false, false
}

// Reset invalidates the whole cache and clears statistics.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = cacheLine{}
		}
	}
	c.Stats = CacheStats{}
	c.clock = 0
}

// ResetStats clears statistics without touching cache contents (used
// at the end of warmup).
func (c *Cache) ResetStats() { c.Stats = CacheStats{} }
