package sched

import (
	"math"
	"strings"
	"testing"

	"soemt/internal/core"
	"soemt/internal/sim"
	"soemt/internal/workload"
)

func score(a, b int, ws, fair float64) PairScore {
	return PairScore{A: a, B: b, WeightedSpeedup: ws, Fairness: fair}
}

func TestBestScheduleExactOptimal(t *testing.T) {
	// 4 jobs; matchings: {01,23}=1.0+1.0=2.0, {02,13}=1.5+0.2=1.7,
	// {03,12}=0.9+0.8=1.7. Optimal is {01,23}.
	scores := []PairScore{
		score(0, 1, 1.0, 0.9),
		score(2, 3, 1.0, 0.9),
		score(0, 2, 1.5, 0.9),
		score(1, 3, 0.2, 0.9),
		score(0, 3, 0.9, 0.9),
		score(1, 2, 0.8, 0.9),
	}
	s, err := BestSchedule(scores, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Total-2.0) > 1e-9 {
		t.Fatalf("total = %v, want 2.0", s.Total)
	}
	if len(s.Pairs) != 2 {
		t.Fatalf("pairs = %d", len(s.Pairs))
	}
}

func TestBestScheduleGreedySuboptimalCase(t *testing.T) {
	// Greedy picks 0-2 (1.5) first, then is stuck with 1-3 (0.2) for a
	// total of 1.7; exact finds 2.0. With 4 jobs the exact path is
	// used, so the optimum must come back.
	scores := []PairScore{
		score(0, 1, 1.0, 1), score(2, 3, 1.0, 1),
		score(0, 2, 1.5, 1), score(1, 3, 0.2, 1),
		score(0, 3, 0.1, 1), score(1, 2, 0.1, 1),
	}
	s, err := BestSchedule(scores, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Total-2.0) > 1e-9 {
		t.Fatalf("exact matching not used: total = %v", s.Total)
	}
}

func TestBestScheduleFairnessFloor(t *testing.T) {
	scores := []PairScore{
		score(0, 1, 2.0, 0.05), // best throughput but unfair
		score(2, 3, 2.0, 0.05),
		score(0, 2, 1.2, 0.8),
		score(1, 3, 1.1, 0.8),
		score(0, 3, 1.0, 0.8),
		score(1, 2, 1.0, 0.8),
	}
	free, err := BestSchedule(scores, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(free.Total-4.0) > 1e-9 {
		t.Fatalf("unconstrained total = %v, want 4.0", free.Total)
	}
	floored, err := BestSchedule(scores, 4, Options{MinFairness: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(floored.Total-2.3) > 1e-9 {
		t.Fatalf("floored total = %v, want 2.3", floored.Total)
	}
	for _, p := range floored.Pairs {
		if p.Fairness < 0.5 {
			t.Fatalf("pair below floor selected: %+v", p)
		}
	}
}

func TestBestScheduleInfeasible(t *testing.T) {
	scores := []PairScore{score(0, 1, 1, 0.1)}
	if _, err := BestSchedule(scores, 2, Options{MinFairness: 0.9}); err == nil {
		t.Fatal("expected infeasible error")
	}
	if _, err := BestSchedule(scores, 3, Options{}); err == nil ||
		!strings.Contains(err.Error(), "odd") {
		t.Fatal("odd pool must error")
	}
	bad := []PairScore{score(0, 5, 1, 1)}
	if _, err := BestSchedule(bad, 2, Options{}); err == nil {
		t.Fatal("out-of-pool score must error")
	}
}

func TestGreedyMatchLargePool(t *testing.T) {
	// 14 jobs forces the greedy path; all pairings weight 1 so any
	// perfect matching totals 7.
	var scores []PairScore
	for a := 0; a < 14; a++ {
		for b := a + 1; b < 14; b++ {
			scores = append(scores, score(a, b, 1, 1))
		}
	}
	s, err := BestSchedule(scores, 14, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Total-7.0) > 1e-9 || len(s.Pairs) != 7 {
		t.Fatalf("greedy matching wrong: total=%v pairs=%d", s.Total, len(s.Pairs))
	}
	seen := map[int]bool{}
	for _, p := range s.Pairs {
		if seen[p.A] || seen[p.B] {
			t.Fatal("job scheduled twice")
		}
		seen[p.A], seen[p.B] = true, true
	}
}

func tinyScale() sim.Scale {
	return sim.Scale{CacheWarm: 30_000, Warm: 30_000, Measure: 120_000, MaxCycles: 30_000_000}
}

func TestEvaluatorEndToEnd(t *testing.T) {
	m := sim.DefaultMachine()
	m.Controller.Policy = core.Fairness{F: 0.5}
	jobs := []Job{
		{Name: "gcc", Profile: workload.MustByName("gcc")},
		{Name: "eon", Profile: workload.MustByName("eon")},
		{Name: "swim", Profile: workload.MustByName("swim")},
		{Name: "gzip", Profile: workload.MustByName("gzip")},
	}
	e, err := NewEvaluator(m, tinyScale(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := e.ScoreAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 6 {
		t.Fatalf("scores = %d, want 6", len(scores))
	}
	for _, s := range scores {
		if s.WeightedSpeedup <= 0 || s.WeightedSpeedup > 2 {
			t.Errorf("pair (%d,%d) weighted speedup %v out of (0,2]", s.A, s.B, s.WeightedSpeedup)
		}
		if s.Fairness < 0 || s.Fairness > 1 {
			t.Errorf("pair (%d,%d) fairness %v out of [0,1]", s.A, s.B, s.Fairness)
		}
	}
	sched, err := BestSchedule(scores, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Pairs) != 2 {
		t.Fatalf("schedule pairs = %d", len(sched.Pairs))
	}
	// ST cache: second call must be free and identical.
	v1, _ := e.SingleIPC(0)
	v2, _ := e.SingleIPC(0)
	if v1 != v2 {
		t.Fatal("SingleIPC not cached")
	}
}

func TestEvaluatorValidation(t *testing.T) {
	m := sim.DefaultMachine()
	if _, err := NewEvaluator(m, tinyScale(), nil); err == nil {
		t.Fatal("empty pool must error")
	}
	bad := workload.MustByName("gcc")
	bad.DepWindow = 0
	if _, err := NewEvaluator(m, tinyScale(), []Job{{Profile: bad}, {Profile: bad}}); err == nil {
		t.Fatal("invalid profile must error")
	}
	jobs := []Job{
		{Name: "a", Profile: workload.MustByName("gcc")},
		{Name: "b", Profile: workload.MustByName("eon")},
	}
	e, err := NewEvaluator(m, tinyScale(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ScorePair(0, 0); err == nil {
		t.Fatal("self-pair must error")
	}
	if _, err := e.ScorePair(0, 9); err == nil {
		t.Fatal("out-of-range must error")
	}
	if len(e.Jobs()) != 2 {
		t.Fatal("Jobs accessor wrong")
	}
}
