// Package sched implements OS-level symbiotic job scheduling on top of
// the SOE simulator, in the spirit of Snavely et al.'s symbiotic job
// scheduling referenced by the paper (§1.1): given a pool of jobs and
// a two-thread SOE processor, sample candidate co-schedules, score
// each pairing by weighted speedup (the sum of the individual threads'
// speedups) and achieved fairness, and select the pairing set that
// maximizes total weighted speedup, optionally subject to a fairness
// floor.
//
// The package demonstrates how the paper's architectural fairness
// mechanism composes with (rather than replaces) OS scheduling: the
// scheduler picks who runs together; the mechanism guarantees fairness
// within each co-schedule.
package sched

import (
	"fmt"
	"math"

	"soemt/internal/core"
	"soemt/internal/sim"
	"soemt/internal/workload"
)

// Job is one workload awaiting co-scheduling.
type Job struct {
	Name    string
	Profile workload.Profile
}

// PairScore records the sampled metrics of one candidate pairing.
type PairScore struct {
	A, B            int // job indices
	WeightedSpeedup float64
	Fairness        float64
	IPC             float64
}

// Evaluator scores pairings with short sampling runs.
type Evaluator struct {
	Machine sim.MachineConfig
	Scale   sim.Scale

	stIPC map[int]float64
	jobs  []Job
}

// NewEvaluator builds an evaluator over a job pool. The machine's
// configured policy is used for the sampling runs (use core.Fairness
// to score schedules under enforcement).
func NewEvaluator(machine sim.MachineConfig, scale sim.Scale, jobs []Job) (*Evaluator, error) {
	if len(jobs) < 2 {
		return nil, fmt.Errorf("sched: need at least two jobs")
	}
	for i, j := range jobs {
		if err := j.Profile.Validate(); err != nil {
			return nil, fmt.Errorf("sched: job %d: %w", i, err)
		}
	}
	return &Evaluator{
		Machine: machine,
		Scale:   scale,
		stIPC:   make(map[int]float64),
		jobs:    jobs,
	}, nil
}

// Jobs returns the job pool.
func (e *Evaluator) Jobs() []Job { return e.jobs }

// SingleIPC returns (and caches) job i's single-thread IPC.
func (e *Evaluator) SingleIPC(i int) (float64, error) {
	if v, ok := e.stIPC[i]; ok {
		return v, nil
	}
	m := e.Machine
	m.Controller.Policy = core.EventOnly{}
	res, err := sim.RunSingle(m, sim.ThreadSpec{Profile: e.jobs[i].Profile, Slot: i}, e.Scale)
	if err != nil {
		return 0, err
	}
	v := res.Threads[0].IPC
	e.stIPC[i] = v
	return v, nil
}

// ScorePair samples the co-schedule of jobs a and b.
func (e *Evaluator) ScorePair(a, b int) (PairScore, error) {
	if a == b || a < 0 || b < 0 || a >= len(e.jobs) || b >= len(e.jobs) {
		return PairScore{}, fmt.Errorf("sched: invalid pair (%d, %d)", a, b)
	}
	stA, err := e.SingleIPC(a)
	if err != nil {
		return PairScore{}, err
	}
	stB, err := e.SingleIPC(b)
	if err != nil {
		return PairScore{}, err
	}
	res, err := sim.Run(sim.Spec{
		Machine: e.Machine,
		Threads: []sim.ThreadSpec{
			{Profile: e.jobs[a].Profile, Slot: a},
			{Profile: e.jobs[b].Profile, Slot: b},
		},
		Scale: e.Scale,
	})
	if err != nil {
		return PairScore{}, err
	}
	sp := core.Speedups([]float64{res.Threads[0].IPC, res.Threads[1].IPC}, []float64{stA, stB})
	return PairScore{
		A: a, B: b,
		WeightedSpeedup: core.WeightedSpeedup(sp),
		Fairness:        core.FairnessMetric(sp),
		IPC:             res.IPCTotal,
	}, nil
}

// ScoreAll samples every pairing of the pool (n·(n−1)/2 runs).
func (e *Evaluator) ScoreAll() ([]PairScore, error) {
	var out []PairScore
	for a := 0; a < len(e.jobs); a++ {
		for b := a + 1; b < len(e.jobs); b++ {
			s, err := e.ScorePair(a, b)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
	}
	return out, nil
}

// Schedule is a set of co-scheduled pairs covering the pool.
type Schedule struct {
	Pairs []PairScore
	Total float64 // sum of weighted speedups
}

// MinFairness filters candidate pairings during selection: pairings
// below the floor are excluded (a floor of 0 admits everything).
type Options struct {
	MinFairness float64
}

// BestSchedule selects the perfect matching of jobs into pairs that
// maximizes total weighted speedup, subject to the fairness floor.
// The pool size must be even. Selection is exact for pools of up to
// 12 jobs (the matching count 11!! = 10,395 is trivial) and greedy
// beyond that.
func BestSchedule(scores []PairScore, nJobs int, opts Options) (*Schedule, error) {
	if nJobs%2 != 0 {
		return nil, fmt.Errorf("sched: pool size %d is odd", nJobs)
	}
	table := make([][]float64, nJobs)
	rec := make([][]PairScore, nJobs)
	for i := range table {
		table[i] = make([]float64, nJobs)
		rec[i] = make([]PairScore, nJobs)
		for j := range table[i] {
			table[i][j] = math.Inf(-1)
		}
	}
	for _, s := range scores {
		if s.A >= nJobs || s.B >= nJobs {
			return nil, fmt.Errorf("sched: score references job %d outside pool", max(s.A, s.B))
		}
		if s.Fairness < opts.MinFairness {
			continue
		}
		table[s.A][s.B], table[s.B][s.A] = s.WeightedSpeedup, s.WeightedSpeedup
		rec[s.A][s.B], rec[s.B][s.A] = s, s
	}

	var pick func(avail []int) ([]PairScore, float64)
	if nJobs <= 12 {
		pick = func(avail []int) ([]PairScore, float64) { return exactMatch(avail, table, rec) }
	} else {
		pick = func(avail []int) ([]PairScore, float64) { return greedyMatch(avail, table, rec) }
	}
	avail := make([]int, nJobs)
	for i := range avail {
		avail[i] = i
	}
	pairs, total := pick(avail)
	if pairs == nil {
		return nil, fmt.Errorf("sched: no feasible schedule under fairness floor %.2f", opts.MinFairness)
	}
	return &Schedule{Pairs: pairs, Total: total}, nil
}

// exactMatch enumerates perfect matchings recursively: fix the first
// available job, try every partner, recurse.
func exactMatch(avail []int, table [][]float64, rec [][]PairScore) ([]PairScore, float64) {
	if len(avail) == 0 {
		return []PairScore{}, 0
	}
	first := avail[0]
	bestTotal := math.Inf(-1)
	var best []PairScore
	for k := 1; k < len(avail); k++ {
		partner := avail[k]
		w := table[first][partner]
		if math.IsInf(w, -1) {
			continue
		}
		rest := make([]int, 0, len(avail)-2)
		rest = append(rest, avail[1:k]...)
		rest = append(rest, avail[k+1:]...)
		sub, subTotal := exactMatch(rest, table, rec)
		if sub == nil {
			continue
		}
		if t := w + subTotal; t > bestTotal {
			bestTotal = t
			best = append([]PairScore{rec[first][partner]}, sub...)
		}
	}
	return best, bestTotal
}

// greedyMatch repeatedly takes the highest-scoring feasible pairing.
func greedyMatch(avail []int, table [][]float64, rec [][]PairScore) ([]PairScore, float64) {
	used := make(map[int]bool)
	var out []PairScore
	total := 0.0
	for len(out)*2 < len(avail) {
		best := math.Inf(-1)
		bi, bj := -1, -1
		for _, i := range avail {
			if used[i] {
				continue
			}
			for _, j := range avail {
				if i >= j || used[j] {
					continue
				}
				if table[i][j] > best {
					best, bi, bj = table[i][j], i, j
				}
			}
		}
		if bi == -1 {
			return nil, 0
		}
		used[bi], used[bj] = true, true
		out = append(out, rec[bi][bj])
		total += best
	}
	return out, total
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
