#!/usr/bin/env bash
# Coverage ratchet: compare total `go test` statement coverage against
# the committed baseline and fail when it drops more than MAX_DROP
# percentage points. The baseline only moves forward: run with
# `--update` after genuinely raising coverage to record the new floor.
#
#   ci/coverage_ratchet.sh            # gate (CI)
#   ci/coverage_ratchet.sh --update   # re-record ci/coverage_baseline.txt
#
# The gate runs `go test -short` so timing-sensitive measurements (e.g.
# the observability overhead scenario in internal/perf) are skipped and
# the number is stable across runners; the baseline is recorded under
# the same flags.
set -euo pipefail

cd "$(dirname "$0")/.."
BASELINE=ci/coverage_baseline.txt
MAX_DROP=1.0

profile=$(mktemp)
trap 'rm -f "$profile"' EXIT
go test -short -count=1 -coverprofile="$profile" ./... >/dev/null

total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
if [ -z "$total" ]; then
    echo "coverage_ratchet: could not compute total coverage" >&2
    exit 1
fi

if [ "${1:-}" = "--update" ]; then
    printf '%s\n' "$total" > "$BASELINE"
    echo "coverage_ratchet: baseline updated to ${total}%"
    exit 0
fi

baseline=$(cat "$BASELINE")
ok=$(awk -v t="$total" -v b="$baseline" -v d="$MAX_DROP" 'BEGIN { print (t >= b - d) ? 1 : 0 }')
echo "coverage_ratchet: total ${total}% (baseline ${baseline}%, allowed drop ${MAX_DROP} points)"
if [ "$ok" != 1 ]; then
    echo "coverage_ratchet: FAIL — coverage fell more than ${MAX_DROP} points below the baseline" >&2
    echo "coverage_ratchet: add tests, or if the drop is justified re-record with: ci/coverage_ratchet.sh --update" >&2
    exit 1
fi
