#!/usr/bin/env bash
# Hypothesis-harness smoke test: re-run every policy-zoo hypothesis
# experiment at QuickScale over the pinned workload seeds and fail on
# any FINDINGS regression — a fresh SUPPORTED/REFUTED status that
# disagrees with the committed hypotheses/FINDINGS_<policy>.md marker
# (or a findings file missing its marker). Also re-proves the N=2
# bit-identity contract the zoo rides on: the seed-golden differential
# suite and the §9 fast-forward equivalence matrix run under -race.
#
#   ci/hypotheses_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== hypothesis experiments @ QuickScale (pinned seeds) ==="
go run ./cmd/soehyp -all -scale quick -check hypotheses >/dev/null

echo "=== N=2 differential + equivalence matrix under -race ==="
go test -race -count=1 -timeout 30m ./internal/sim \
    -run 'TestNThreadSeedDifferential|TestFastForwardEquivalenceMatrix'

echo "hypotheses smoke: OK"
