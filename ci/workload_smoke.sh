#!/usr/bin/env bash
# Workload-spec smoke test: expand the committed example spec, boot
# soeserve, replay the smoke spec open-loop through soegen, and verify
#
#   1. the dedup invariant — runner.runs_started equals the number of
#      DISTINCT specs in the schedule (soegen's distinct_specs=N),
#      however many requests the replay fired;
#   2. the admission contract — every submission ends inside
#      {2xx, 429}: soegen exits non-zero (errors>0) otherwise;
#   3. offline determinism — two -schedule expansions of the same spec
#      are byte-identical.
#
#   ci/workload_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:18090
WORK=$(mktemp -d)
PID=""
cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/soeserve" ./cmd/soeserve
go build -o "$WORK/soegen" ./cmd/soegen

# Offline checks first: the README example must validate, and the
# smoke spec must expand deterministically.
"$WORK/soegen" -validate examples/specs/mixed.yaml
"$WORK/soegen" -schedule examples/specs/smoke.yaml > "$WORK/sched1.csv"
"$WORK/soegen" -schedule examples/specs/smoke.yaml > "$WORK/sched2.csv"
if ! cmp -s "$WORK/sched1.csv" "$WORK/sched2.csv"; then
    echo "workload_smoke: FAIL — same spec produced different schedules" >&2
    exit 1
fi

"$WORK/soeserve" -addr "$ADDR" -queue 128 -workers 4 >"$WORK/serve.log" 2>&1 &
PID=$!
curl -fsS --retry 25 --retry-connrefused --retry-delay 1 "http://$ADDR/healthz" >/dev/null

metric() {
    curl -fsS "http://$ADDR/metrics" | awk -v n="$1" '$1==n {print $2}'
}

# Replay the smoke burst time-compressed. soegen exits non-zero if any
# submission ends outside {2xx, 429}, which fails the script via -e.
"$WORK/soegen" -replay examples/specs/smoke.yaml \
    -addr "http://$ADDR" -speed 4 | tee "$WORK/replay.log"

distinct=$(sed -n 's/.*distinct_specs=\([0-9]*\).*/\1/p' "$WORK/replay.log" | tail -1)
if [ -z "$distinct" ]; then
    echo "workload_smoke: FAIL — replay summary missing distinct_specs" >&2
    exit 1
fi

# Wait for the queue to drain, then check the invariant.
for i in $(seq 1 240); do
    pending=$(metric serve.jobs.pending)
    [ "${pending:-1}" = "0" ] && break
    sleep 0.5
done
if [ "${pending:-1}" != "0" ]; then
    echo "workload_smoke: FAIL — jobs still pending after timeout" >&2
    exit 1
fi

runs=$(metric runner.runs_started)
failed=$(metric serve.jobs_failed)
echo "workload_smoke: distinct_specs=$distinct runs_started=${runs:-0} failed=${failed:-0}"
if [ "${runs:-0}" != "$distinct" ]; then
    echo "workload_smoke: FAIL — $distinct distinct specs but ${runs:-0} engine runs (dedup invariant broken)" >&2
    exit 1
fi
if [ "${failed:-0}" != 0 ]; then
    echo "workload_smoke: FAIL — ${failed} jobs failed" >&2
    exit 1
fi

kill -TERM "$PID"
rc=0
wait "$PID" || rc=$?
PID=""
if [ "$rc" != 0 ]; then
    echo "workload_smoke: FAIL — server exited $rc after SIGTERM" >&2
    cat "$WORK/serve.log" >&2
    exit 1
fi
echo "workload_smoke: OK"
