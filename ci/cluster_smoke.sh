#!/usr/bin/env bash
# Cluster smoke test: boot three soeserve nodes plus a soeproxy
# gateway, fire a 100-request burst (10 distinct specs x 10
# duplicates) through the proxy, and verify
#
#   1. the cluster-wide dedup invariant — routing by content-addressed
#      fingerprint means each distinct spec simulates exactly once
#      across the whole fleet (sum of runner.runs_started == 10);
#   2. the peer cache tier — a spec submitted directly to non-owner
#      nodes is served by verified peer fill, not re-simulation;
#   3. resilience — kill -9 one node mid-burst, re-burst, and the
#      survivors absorb its keys with zero responses outside
#      {2xx, 429} and the invariant intact (survivor runs == 10).
#
#   ci/cluster_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

N1=127.0.0.1:18081
N2=127.0.0.1:18082
N3=127.0.0.1:18083
PROXY=127.0.0.1:18090
WORK=$(mktemp -d)
PIDS=()
cleanup() {
    for p in "${PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/soeserve" ./cmd/soeserve
go build -o "$WORK/soeproxy" ./cmd/soeproxy

PEERS="http://$N1,http://$N2,http://$N3"
for i in 1 2 3; do
    addr_var="N$i"
    addr=${!addr_var}
    mkdir -p "$WORK/cache$i"
    "$WORK/soeserve" -addr "$addr" -node-name "n$i" \
        -self "http://$addr" -peers "$PEERS" \
        -cache-dir "$WORK/cache$i" -queue 256 -workers 4 \
        -probe-interval 500ms >"$WORK/n$i.log" 2>&1 &
    PIDS+=($!)
done
"$WORK/soeproxy" -addr "$PROXY" -nodes "$PEERS" \
    -probe-interval 500ms >"$WORK/proxy.log" 2>&1 &
PIDS+=($!)

for addr in "$N1" "$N2" "$N3" "$PROXY"; do
    curl -fsS --retry 25 --retry-connrefused --retry-delay 1 \
        "http://$addr/healthz" >/dev/null
done

metric() { # metric <addr> <name>
    curl -fsS "http://$1/metrics" | awk -v n="$2" '$1==n {print $2}'
}

sum_metric() { # sum_metric <name> <addr...>
    local name=$1 total=0 v
    shift
    for addr in "$@"; do
        v=$(metric "$addr" "$name")
        total=$((total + ${v:-0}))
    done
    echo "$total"
}

spec() { # spec <i> -> request body for distinct spec i of 10
    awk -v i="$1" 'BEGIN{printf "{\"pair\":\"gcc:eon\",\"f\":%.6f,\"scale\":\"tiny\"}", i/11}'
}

# burst <tag>: 10 distinct specs x 10 duplicates, all concurrent,
# through the gateway. Each curl records its HTTP status to its own
# file so a dying backend mid-burst cannot corrupt the tally.
burst() {
    local tag=$1
    mkdir -p "$WORK/codes-$tag"
    (
        for i in $(seq 1 10); do
            body=$(spec "$i")
            for j in $(seq 1 10); do
                curl -s -o /dev/null -w '%{http_code}' -X POST \
                    "http://$PROXY/v1/run" -d "$body" \
                    >"$WORK/codes-$tag/$i-$j" &
            done
        done
        wait
    )
}

# check_codes <tag>: every recorded status must be 2xx or 429. The
# code files have no trailing newline, so read them one at a time.
check_codes() {
    local f code
    for f in "$WORK/codes-$1"/*; do
        code=$(cat "$f")
        case "$code" in
        2??|429) ;;
        *)
            echo "cluster_smoke: FAIL — burst $1 request ${f##*/} got HTTP ${code:-none}" >&2
            exit 1
            ;;
        esac
    done
}

wait_idle() { # wait_idle <addr...>
    local addr pending
    for i in $(seq 1 240); do
        pending=0
        for addr in "$@"; do
            p=$(metric "$addr" serve.jobs.pending)
            pending=$((pending + ${p:-1}))
        done
        [ "$pending" = 0 ] && return 0
        sleep 0.5
    done
    echo "cluster_smoke: FAIL — jobs still pending after timeout" >&2
    exit 1
}

# --- phase 1: dedup invariant across the fleet ----------------------
burst one
check_codes one
wait_idle "$N1" "$N2" "$N3"

runs=$(sum_metric runner.runs_started "$N1" "$N2" "$N3")
echo "cluster_smoke: burst 1 — fleet runs_started=$runs" \
    "(n1=$(metric "$N1" runner.runs_started)" \
    "n2=$(metric "$N2" runner.runs_started)" \
    "n3=$(metric "$N3" runner.runs_started))"
if [ "$runs" != 10 ]; then
    echo "cluster_smoke: FAIL — 10 distinct specs must simulate exactly 10 times fleet-wide, got $runs" >&2
    exit 1
fi

# --- phase 2: peer cache fill ---------------------------------------
# Submit one already-simulated spec DIRECTLY to every node. The owner
# answers from its local cache; the two non-owners must pull the
# sha256-verified entry from the owner instead of re-simulating.
for addr in "$N1" "$N2" "$N3"; do
    curl -fsS -X POST "http://$addr/v1/run" -d "$(spec 1)" >/dev/null
done
wait_idle "$N1" "$N2" "$N3"
fills=$(sum_metric cluster.peer_fill_hits "$N1" "$N2" "$N3")
runs=$(sum_metric runner.runs_started "$N1" "$N2" "$N3")
echo "cluster_smoke: peer fill — peer_fill_hits=$fills runs_started=$runs"
if [ "$fills" != 2 ]; then
    echo "cluster_smoke: FAIL — expected the 2 non-owner nodes to peer-fill, got $fills" >&2
    exit 1
fi
if [ "$runs" != 10 ]; then
    echo "cluster_smoke: FAIL — peer fill must not re-simulate (runs went 10 -> $runs)" >&2
    exit 1
fi

# --- phase 3: node death mid-burst ----------------------------------
# kill -9 node 2 while burst 2 is in flight; the gateway must retry
# its keys onto ring successors without surfacing anything beyond
# {2xx, 429}. Burst 3 then resubmits every spec after the death so
# each one provably lands on a survivor; since the survivors already
# cached their own keys in burst 1 and only re-run the dead node's,
# their combined runs_started ends at exactly 10.
burst two &
BURST_PID=$!
sleep 0.3
kill -9 "${PIDS[1]}" 2>/dev/null || true
wait "$BURST_PID"
check_codes two

burst three
check_codes three
wait_idle "$N1" "$N3"

runs=$(sum_metric runner.runs_started "$N1" "$N3")
echo "cluster_smoke: post-kill — survivor runs_started=$runs" \
    "(n1=$(metric "$N1" runner.runs_started)" \
    "n3=$(metric "$N3" runner.runs_started))"
if [ "$runs" != 10 ]; then
    echo "cluster_smoke: FAIL — survivors must absorb the dead node's keys exactly once (want 10, got $runs)" >&2
    exit 1
fi

"$WORK/soeproxy" -status -addr "$PROXY" | tee "$WORK/status.json"
if ! grep -q '"proxy.retries"' "$WORK/status.json"; then
    echo "cluster_smoke: FAIL — /status missing proxy counters" >&2
    exit 1
fi
echo
echo "cluster_smoke: OK"
