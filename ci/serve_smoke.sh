#!/usr/bin/env bash
# Serve smoke test: boot soeserve, fire 50 concurrent submissions
# (25 sharing one spec + 25 distinct F levels), and verify
#
#   1. the dedup invariant — the shared spec simulates exactly once,
#      so runner.runs_started equals the number of DISTINCT specs and
#      serve.coalesced + cache hits account for every duplicate;
#   2. clean SIGTERM drain — jobs submitted right before the signal
#      all finish, the process logs a lossless drain and exits 0.
#
#   ci/serve_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:18080
WORK=$(mktemp -d)
PID=""
cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/soeserve" ./cmd/soeserve
"$WORK/soeserve" -addr "$ADDR" -queue 128 -workers 4 >"$WORK/serve.log" 2>&1 &
PID=$!

curl -fsS --retry 25 --retry-connrefused --retry-delay 1 "http://$ADDR/healthz" >/dev/null

metric() {
    curl -fsS "http://$ADDR/metrics" | awk -v n="$1" '$1==n {print $2}'
}

post_run() {
    curl -fsS -X POST "http://$ADDR/v1/run" -d "$1" >/dev/null
}

# 25 identical submissions + 25 distinct F levels (i/53 never equals
# the shared 0.5, so the distinct-spec count is exactly 26). The burst
# runs in a subshell so its bare `wait` sees only the curls, not the
# backgrounded server.
(
    for i in $(seq 1 25); do
        post_run '{"pair":"gcc:eon","f":0.5,"scale":"tiny"}' &
    done
    for i in $(seq 1 25); do
        f=$(awk -v i="$i" 'BEGIN{printf "%.6f", i/53}')
        post_run "{\"pair\":\"gcc:eon\",\"f\":$f,\"scale\":\"tiny\"}" &
    done
    wait
)

for i in $(seq 1 240); do
    pending=$(metric serve.jobs.pending)
    [ "${pending:-1}" = "0" ] && break
    sleep 0.5
done
if [ "${pending:-1}" != "0" ]; then
    echo "serve_smoke: FAIL — jobs still pending after timeout" >&2
    exit 1
fi

runs=$(metric runner.runs_started)
failed=$(metric serve.jobs_failed)
coalesced=$(metric serve.coalesced)
mem=$(metric cache.mem_hits)
dedup=$(metric cache.dedup_hits)
disk=$(metric cache.disk_hits)
dups=$(( ${coalesced:-0} + ${mem:-0} + ${dedup:-0} + ${disk:-0} ))
echo "serve_smoke: runs_started=$runs failed=$failed coalesced=$coalesced mem=$mem dedup=$dedup disk=$disk"

if [ "${runs:-0}" != 26 ]; then
    echo "serve_smoke: FAIL — expected exactly 26 simulations for 26 distinct specs, got ${runs:-0}" >&2
    exit 1
fi
if [ "${failed:-0}" != 0 ]; then
    echo "serve_smoke: FAIL — ${failed} jobs failed" >&2
    exit 1
fi
if [ "$dups" != 24 ]; then
    echo "serve_smoke: FAIL — coalescer+cache absorbed $dups duplicates, expected 24" >&2
    exit 1
fi

# --- fast tier (DESIGN.md §12) -------------------------------------
# A burst of tier=fast submissions on a never-simulated pair must be
# answered synchronously from the calibrated model: analytical
# fidelity, sub-millisecond on average, and zero new engine runs.
runs_before=$(metric runner.runs_started)
for i in $(seq 1 20); do
    body=$(curl -fsS -X POST "http://$ADDR/v1/run" \
        -d '{"pair":"swim:mcf","f":0.5,"scale":"tiny","tier":"fast"}')
    if ! echo "$body" | grep -q '"fidelity": "analytical"'; then
        echo "serve_smoke: FAIL — fast answer lacks analytical fidelity: $body" >&2
        exit 1
    fi
done
runs_now=$(metric runner.runs_started)
if [ "${runs_now:-0}" != "${runs_before:-0}" ]; then
    echo "serve_smoke: FAIL — tier=fast started $((runs_now - runs_before)) simulations" >&2
    exit 1
fi
fast_answers=$(metric serve.fast.answers)
fast_us=$(metric serve.fast.latency_us_total)
avg_us=$(awk -v t="${fast_us:-0}" -v n="${fast_answers:-1}" 'BEGIN{printf "%.0f", t/n}')
echo "serve_smoke: fast answers=$fast_answers avg latency ${avg_us}us"
if [ "$avg_us" -ge 1000 ]; then
    echo "serve_smoke: FAIL — fast tier averaged ${avg_us}us per answer, want sub-millisecond" >&2
    exit 1
fi

# tier=auto refines in place: the 202 carries the analytical answer,
# the job flips to exact fidelity once the one (and only one) real
# simulation lands.
body=$(curl -fsS -X POST "http://$ADDR/v1/run" \
    -d '{"pair":"swim:mcf","f":1,"scale":"tiny","tier":"auto"}')
if ! echo "$body" | grep -q '"fidelity": "analytical"'; then
    echo "serve_smoke: FAIL — auto 202 lacks the analytical fast answer: $body" >&2
    exit 1
fi
job=$(echo "$body" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
for i in $(seq 1 240); do
    jb=$(curl -fsS "http://$ADDR/v1/jobs/$job")
    echo "$jb" | grep -q '"state": "done"' && break
    sleep 0.5
done
if ! echo "$jb" | grep -q '"fidelity": "exact"'; then
    echo "serve_smoke: FAIL — auto job $job never refined to exact fidelity: $jb" >&2
    exit 1
fi
runs_refined=$(metric runner.runs_started)
if [ "${runs_refined:-0}" != "$((runs_before + 1))" ]; then
    echo "serve_smoke: FAIL — auto refinement ran $((runs_refined - runs_before)) simulations, want 1" >&2
    exit 1
fi
echo "serve_smoke: fast tier OK (auto job $job refined analytical -> exact)"

# Submit fresh work and SIGTERM while it may still be in flight: the
# drain must finish every accepted job and report zero loss.
(
    for f in 0.111111 0.222222 0.333333 0.444444; do
        post_run "{\"pair\":\"swim:gzip\",\"f\":$f,\"scale\":\"tiny\"}" &
    done
    wait
)
kill -TERM "$PID"
rc=0
wait "$PID" || rc=$?
PID=""
if [ "$rc" != 0 ]; then
    echo "serve_smoke: FAIL — server exited $rc after SIGTERM" >&2
    cat "$WORK/serve.log" >&2
    exit 1
fi
if ! grep -q "drained cleanly, no accepted job lost" "$WORK/serve.log"; then
    echo "serve_smoke: FAIL — no clean-drain log line" >&2
    cat "$WORK/serve.log" >&2
    exit 1
fi
echo "serve_smoke: OK"
