// Package soemt is a library reproduction of "Fairness and Throughput
// in Switch on Event Multithreading" (Gabor, Weiss, Mendelson — MICRO
// 2006).
//
// It bundles a cycle-level out-of-order SOE processor simulator, the
// paper's runtime fairness-enforcement mechanism (counter-based
// single-thread IPC estimation, Eq. 9 instruction quotas, deficit-
// counter switch points), the analytical fairness/throughput model
// (Eqs. 1–10), synthetic SPEC-like workloads, and harnesses that
// regenerate every table and figure of the paper's evaluation.
//
// This package is a thin facade over the internal packages; examples
// and downstream users should start here. Quick start:
//
//	machine := soemt.DefaultMachine()
//	machine.Controller.Policy = soemt.Fairness{F: 0.5}
//	res, err := soemt.Run(soemt.Spec{
//	    Machine: machine,
//	    Threads: []soemt.ThreadSpec{
//	        {Profile: soemt.MustProfile("gcc"), Slot: 0},
//	        {Profile: soemt.MustProfile("eon"), Slot: 1},
//	    },
//	    Scale: soemt.QuickScale(),
//	})
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package soemt

import (
	"context"

	"soemt/internal/core"
	"soemt/internal/model"
	"soemt/internal/sim"
	"soemt/internal/workload"
)

// Simulation types.
type (
	// MachineConfig bundles pipeline, memory and controller settings.
	MachineConfig = sim.MachineConfig
	// Spec describes a complete simulation run.
	Spec = sim.Spec
	// ThreadSpec describes one thread of a run.
	ThreadSpec = sim.ThreadSpec
	// Scale sets warmup and measurement lengths.
	Scale = sim.Scale
	// Result is the outcome of a run.
	Result = sim.Result
	// ThreadResult is the per-thread outcome.
	ThreadResult = sim.ThreadResult
	// Watchdog bounds a run's wall-clock time and forward progress.
	Watchdog = sim.Watchdog
)

// Workloads.
type (
	// Profile parameterises a synthetic workload.
	Profile = workload.Profile
	// Phase is a workload phase-schedule entry.
	Phase = workload.Phase
)

// Switch policies (controller configuration).
type (
	// EventOnly is baseline SOE: switch only on L2 misses (F = 0).
	EventOnly = core.EventOnly
	// Fairness enforces the paper's mechanism with target F.
	Fairness = core.Fairness
	// TimeShare is the §6 fixed-cycle-quota baseline.
	TimeShare = core.TimeShare
	// SwitchStats counts switches by cause.
	SwitchStats = core.SwitchStats
)

// Analytical model (Section 2).
type (
	// ModelSystem is a set of threads for the analytical model.
	ModelSystem = model.System
	// ModelThread characterises one thread analytically.
	ModelThread = model.ThreadParams
	// Prediction is the model's output for one fairness setting.
	Prediction = model.Prediction
)

// DefaultMachine returns the paper's machine configuration (Table 3).
func DefaultMachine() MachineConfig { return sim.DefaultMachine() }

// PaperScale returns the §4.1 protocol: 10M-instruction cache warmup,
// 1M excluded, 6M measured per thread.
func PaperScale() Scale { return sim.PaperScale() }

// QuickScale returns a scaled-down protocol whose result shapes match
// paper scale.
func QuickScale() Scale { return sim.QuickScale() }

// Run executes a simulation (warmup, measurement, result assembly).
func Run(spec Spec) (*Result, error) { return sim.Run(spec) }

// RunContext executes a simulation honoring ctx cancellation and the
// spec's watchdog (wall-clock deadline, forward-progress stall
// detection).
func RunContext(ctx context.Context, spec Spec) (*Result, error) { return sim.RunContext(ctx, spec) }

// RunSingle runs one thread alone (the paper's IPC_ST reference runs).
func RunSingle(machine MachineConfig, ts ThreadSpec, scale Scale) (*Result, error) {
	return sim.RunSingle(machine, ts, scale)
}

// Profiles lists the built-in SPEC-like workload names.
func Profiles() []string { return workload.Names() }

// ProfileByName returns a built-in workload profile.
func ProfileByName(name string) (Profile, bool) { return workload.ByName(name) }

// MustProfile returns a built-in profile or panics.
func MustProfile(name string) Profile { return workload.MustByName(name) }

// FairnessMetric is the paper's Eq. 4: the minimum ratio between the
// speedups of any two threads (1 = perfectly fair, 0 = starvation).
func FairnessMetric(speedups []float64) float64 { return core.FairnessMetric(speedups) }

// Speedups divides per-thread SOE IPC by single-thread IPC.
func Speedups(ipcSOE, ipcST []float64) []float64 { return core.Speedups(ipcSOE, ipcST) }

// WeightedSpeedup is Snavely et al.'s combined metric (§6).
func WeightedSpeedup(speedups []float64) float64 { return core.WeightedSpeedup(speedups) }

// HarmonicFairness is Luo et al.'s combined metric (§6).
func HarmonicFairness(speedups []float64) float64 { return core.HarmonicFairness(speedups) }

// Example2 returns the analytical system of the paper's Example 2 /
// Table 2.
func Example2() *ModelSystem { return model.Example2System() }
