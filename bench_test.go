// Benchmarks regenerating every table and figure of the paper
// (see DESIGN.md §4 for the experiment index). Each benchmark reports
// the headline quantities of its table/figure via b.ReportMetric, so
// `go test -bench=. -benchmem` doubles as the reproduction run:
//
//	BenchmarkTable2       — analytical Example 2 (Table 2)
//	BenchmarkFig3         — analytical throughput-vs-F sweep
//	BenchmarkExample1     — gcc:eon starvation at F=0
//	BenchmarkFig5         — detailed gcc:eon time series
//	BenchmarkFig6/7/8     — the full 16-pair × 4-F simulation matrix
//	BenchmarkTimeShare    — §6 time-sharing comparison
//	BenchmarkAblation*    — design-choice ablations (DESIGN.md §5)
//	BenchmarkSimulator    — raw simulator speed
//
// The simulation scale defaults to a fast reduced protocol; set
// SOEMT_BENCH_SCALE=quick or =paper for longer, lower-noise runs
// (paper scale takes tens of minutes).
package soemt_test

import (
	"io"
	"math"
	"os"
	"sync"
	"testing"

	"soemt/internal/core"
	"soemt/internal/experiments"
	"soemt/internal/model"
	"soemt/internal/sim"
	"soemt/internal/workload"
)

func benchOptions() experiments.Options {
	opts := experiments.DefaultOptions()
	switch os.Getenv("SOEMT_BENCH_SCALE") {
	case "paper":
		opts = experiments.PaperOptions()
	case "quick":
		// default quick scale
	default:
		opts.Scale = sim.Scale{CacheWarm: 50_000, Warm: 50_000, Measure: 250_000, MaxCycles: 50_000_000}
		opts.SameOffset = 50_000
	}
	return opts
}

// The 16-pair × 4-F matrix is expensive; compute it once and share it
// across the figure benchmarks.
var (
	matrixOnce sync.Once
	matrixRuns []*experiments.PairRun
	matrixErr  error
)

func matrix(b *testing.B) []*experiments.PairRun {
	b.Helper()
	matrixOnce.Do(func() {
		r := experiments.NewRunner(benchOptions())
		matrixRuns, matrixErr = r.RunAll()
	})
	if matrixErr != nil {
		b.Fatal(matrixErr)
	}
	return matrixRuns
}

func BenchmarkTable2(b *testing.B) {
	var fair0 float64
	for i := 0; i < b.N; i++ {
		rows, err := model.Table2()
		if err != nil {
			b.Fatal(err)
		}
		fair0 = rows[0].Fairness
	}
	b.ReportMetric(fair0, "fairnessF0")                      // paper: 0.11
	b.ReportMetric(mustPredict(b, 1).Slowdown[0], "slow1F1") // paper: 1.59
}

func mustPredict(b *testing.B, f float64) *model.Prediction {
	b.Helper()
	p, err := model.Example2System().Predict(f)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkFig3(b *testing.B) {
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		cases, err := model.Figure3(21)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, c := range cases {
			for _, d := range c.DeltaPc {
				lo = math.Min(lo, d)
				hi = math.Max(hi, d)
			}
		}
	}
	b.ReportMetric(lo, "minDeltaPct") // paper: about -15
	b.ReportMetric(hi, "maxDeltaPct") // paper: about +10
}

func BenchmarkExample1(b *testing.B) {
	var fair float64
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		if err := experiments.ExpExample1(io.Discard, r); err != nil {
			b.Fatal(err)
		}
		pr, err := r.RunPair(experiments.Pair{A: "gcc", B: "eon"})
		if err != nil {
			b.Fatal(err)
		}
		fair = pr.Fairness(0)
	}
	b.ReportMetric(fair, "fairnessF0") // strongly unfair: << 0.5
}

func BenchmarkFig5(b *testing.B) {
	var meanFair float64
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		d, err := experiments.ExpFig5(io.Discard, r)
		if err != nil {
			b.Fatal(err)
		}
		var s float64
		for _, v := range d.FairF {
			s += v
		}
		meanFair = s / float64(len(d.FairF))
	}
	b.ReportMetric(meanFair, "meanWindowFairness")
}

func BenchmarkFig6(b *testing.B) {
	runs := matrix(b)
	var sum *experiments.Fig6Summary
	for i := 0; i < b.N; i++ {
		var err error
		sum, err = experiments.ExpFig6(io.Discard, runs)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Paper: 24%, 21%, 19%, 15%.
	b.ReportMetric((sum.AvgSpeedupByF[0]-1)*100, "speedupPctF0")
	b.ReportMetric((sum.AvgSpeedupByF[0.25]-1)*100, "speedupPctF14")
	b.ReportMetric((sum.AvgSpeedupByF[0.5]-1)*100, "speedupPctF12")
	b.ReportMetric((sum.AvgSpeedupByF[1]-1)*100, "speedupPctF1")
}

func BenchmarkFig7(b *testing.B) {
	runs := matrix(b)
	var sum *experiments.Fig7Summary
	for i := 0; i < b.N; i++ {
		var err error
		sum, err = experiments.ExpFig7(io.Discard, runs)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Paper: 2.2%, 3.7%, 7.2%.
	b.ReportMetric(sum.AvgDegradationByF[0.25]*100, "degPctF14")
	b.ReportMetric(sum.AvgDegradationByF[0.5]*100, "degPctF12")
	b.ReportMetric(sum.AvgDegradationByF[1]*100, "degPctF1")
	b.ReportMetric(sum.Correlation, "forcedSwitchCorr") // paper: high
}

func BenchmarkFig8(b *testing.B) {
	runs := matrix(b)
	var sum *experiments.Fig8Summary
	for i := 0; i < b.N; i++ {
		var err error
		sum, err = experiments.ExpFig8(io.Discard, runs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sum.AvgTruncatedByF[0.25], "truncFairF14") // ~0.25
	b.ReportMetric(sum.AvgTruncatedByF[0.5], "truncFairF12")  // ~0.5
	b.ReportMetric(sum.AvgTruncatedByF[1], "truncFairF1")     // below 1
	b.ReportMetric(sum.StarvedShareF0*100, "starvedPctF0")    // paper: >33%
}

func BenchmarkTimeShare(b *testing.B) {
	var sum *experiments.TimeShareSummary
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		var err error
		sum, err = experiments.ExpTimeShare(io.Discard, r)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sum.ModelTimeShareFairness, "modelTSFairness") // paper: 0.6
	b.ReportMetric(sum.SimMechanismIPC, "mechanismIPC")
	if len(sum.SimRows) > 0 {
		b.ReportMetric(sum.SimRows[0].IPC, "timeShare400IPC")
	}
}

// --- Ablations (DESIGN.md §5) --------------------------------------------

func ablationRun(b *testing.B, mutate func(*sim.MachineConfig)) (fairness, ipc float64) {
	b.Helper()
	opts := benchOptions()
	m := opts.Machine
	m.Controller.Policy = core.Fairness{F: 1}
	mutate(&m)

	st := make([]float64, 2)
	for i, name := range []string{"gcc", "eon"} {
		res, err := sim.RunSingle(opts.Machine, sim.ThreadSpec{
			Profile: workload.MustByName(name), Slot: i,
		}, opts.Scale)
		if err != nil {
			b.Fatal(err)
		}
		st[i] = res.Threads[0].IPC
	}
	res, err := sim.Run(sim.Spec{
		Machine: m,
		Threads: []sim.ThreadSpec{
			{Profile: workload.MustByName("gcc"), Slot: 0},
			{Profile: workload.MustByName("eon"), Slot: 1},
		},
		Scale: opts.Scale,
	})
	if err != nil {
		b.Fatal(err)
	}
	sp := core.Speedups([]float64{res.Threads[0].IPC, res.Threads[1].IPC}, st)
	return core.FairnessMetric(sp), res.IPCTotal
}

// BenchmarkAblationDeficit compares deficit counting (§3.2) against
// naive quota resetting.
func BenchmarkAblationDeficit(b *testing.B) {
	var fDeficit, fNaive float64
	for i := 0; i < b.N; i++ {
		fDeficit, _ = ablationRun(b, func(m *sim.MachineConfig) {})
		fNaive, _ = ablationRun(b, func(m *sim.MachineConfig) { m.Controller.NaiveDeficit = true })
	}
	b.ReportMetric(fDeficit, "fairnessDeficit")
	b.ReportMetric(fNaive, "fairnessNaive")
}

// BenchmarkAblationDelta sweeps the sampling period Δ: small windows
// are noisy, large ones lag phases (the paper's §3.1 tradeoff).
func BenchmarkAblationDelta(b *testing.B) {
	var f50k, f250k, f1m float64
	for i := 0; i < b.N; i++ {
		f50k, _ = ablationRun(b, func(m *sim.MachineConfig) {
			m.Controller.Delta = 50_000
			m.Controller.MaxCyclesQuota = 10_000
		})
		f250k, _ = ablationRun(b, func(m *sim.MachineConfig) {})
		f1m, _ = ablationRun(b, func(m *sim.MachineConfig) {
			m.Controller.Delta = 1_000_000
		})
	}
	b.ReportMetric(f50k, "fairnessDelta50k")
	b.ReportMetric(f250k, "fairnessDelta250k")
	b.ReportMetric(f1m, "fairnessDelta1M")
}

// BenchmarkAblationMissCount compares the paper's trigger-based miss
// counting against counting every demand miss at execute.
func BenchmarkAblationMissCount(b *testing.B) {
	var fTrigger, fAll float64
	for i := 0; i < b.N; i++ {
		fTrigger, _ = ablationRun(b, func(m *sim.MachineConfig) {})
		fAll, _ = ablationRun(b, func(m *sim.MachineConfig) { m.Controller.CountAllMisses = true })
	}
	b.ReportMetric(fTrigger, "fairnessTriggerCount")
	b.ReportMetric(fAll, "fairnessDemandCount")
}

// BenchmarkAblationMissLat compares the constant Miss_lat against the
// §6 measured-latency extension.
func BenchmarkAblationMissLat(b *testing.B) {
	var fConst, fMeasured float64
	for i := 0; i < b.N; i++ {
		fConst, _ = ablationRun(b, func(m *sim.MachineConfig) {})
		fMeasured, _ = ablationRun(b, func(m *sim.MachineConfig) { m.Controller.MeasureMissLat = true })
	}
	b.ReportMetric(fConst, "fairnessConstLat")
	b.ReportMetric(fMeasured, "fairnessMeasuredLat")
}

// BenchmarkSimulator measures raw simulation speed in simulated
// instructions per wall second.
func BenchmarkSimulator(b *testing.B) {
	opts := benchOptions()
	prof := workload.MustByName("gcc")
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunSingle(opts.Machine, sim.ThreadSpec{Profile: prof, Slot: 0}, opts.Scale)
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Threads[0].Counters.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkAblationPrefetch measures the interaction of a next-line L2
// prefetcher with SOE: prefetching removes switch triggers from
// strided workloads (the paper's machine has no prefetcher).
func BenchmarkAblationPrefetch(b *testing.B) {
	var offIPC, onIPC, offSw, onSw float64
	run := func(degree int) (float64, float64) {
		opts := benchOptions()
		m := opts.Machine
		m.Memory.PrefetchDegree = degree
		m.Controller.Policy = core.EventOnly{}
		res, err := sim.Run(sim.Spec{
			Machine: m,
			Threads: []sim.ThreadSpec{
				{Profile: workload.MustByName("swim"), Slot: 0},
				{Profile: workload.MustByName("gzip"), Slot: 1},
			},
			Scale: opts.Scale,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.IPCTotal, float64(res.Switches.Miss) / float64(res.WallCycles) * 1000
	}
	for i := 0; i < b.N; i++ {
		offIPC, offSw = run(0)
		onIPC, onSw = run(4)
	}
	b.ReportMetric(offIPC, "ipcNoPrefetch")
	b.ReportMetric(onIPC, "ipcPrefetch4")
	b.ReportMetric(offSw, "missSw/1kNoPf")
	b.ReportMetric(onSw, "missSw/1kPf4")
}
