module soemt

go 1.22
